//! Differential harness for the fused multi-source traversal layer.
//!
//! The promise under test: **every lane of a fused K-query batch is
//! bit-identical to running that query alone**, under every executor
//! configuration. Fused edge maps plan on the union frontier but reuse the
//! scalar partitioning, chunking, hub splitting and work stealing, so the
//! sweep mirrors `chunked_differential.rs`: chunk caps {1, Auto, max} ×
//! 1–4 threads × 1/2/7 partitions, all compared against single-source
//! oracles computed on the sequential engine (1 partition, 1 thread,
//! unbounded chunks).
//!
//! 1. **Fused BFS**: lane `k`'s distance vector equals the scalar
//!    `bfs(sources[k])` levels in every configuration; round counts equal
//!    the maximum over lanes of the scalar round counts.
//! 2. **Fused reachability**: bit `k` of each vertex mask equals
//!    "`bfs(sources[k])` reached the vertex".
//! 3. **Fused PPR**: per-lane f64 mass vectors are *bitwise* equal to the
//!    single-seed run — residual folds group by fixed quanta in CSC scan
//!    order, so lane `k` performs the identical f64 operation sequence no
//!    matter which other lanes ride along.
//! 4. **Property sweep (proptest)**: random graphs × random source
//!    multisets × K ∈ {1, 63, 64} (duplicate seeds legal — and at K ≥ 63
//!    over ≤ 60 vertices, guaranteed by pigeonhole) agree with the
//!    single-source oracles lane-for-lane, BFS, reachability **and** PPR —
//!    including lanes the runner retires early.
//! 5. **Stepped slicing**: driving the resumable runners in uneven
//!    time-slices (the serving layer's capped-rounds mode) changes
//!    nothing — results and per-lane retirement rounds are identical to
//!    drained runs in every configuration.
//!
//! The thread list honours `GG_THREADS` (the CI `query-fusion` leg diffs a
//! 1-thread run against a 4-thread run of this suite).

#![recursion_limit = "256"]

use proptest::prelude::*;

use graphgrind::algorithms::{
    self, fused_bfs, fused_ppr, fused_reachability, FusedBfsRun, FusedPprRun,
};
use graphgrind::core::config::{threads_from_env, ChunkCap, Config, ExecutorKind};
use graphgrind::core::engine::{Engine, GraphGrind2};
use graphgrind::graph::edge_list::EdgeList;
use graphgrind::graph::generators::{self, RmatParams};
use graphgrind::runtime::numa::NumaTopology;

const CAPS: [ChunkCap; 3] = [
    ChunkCap::Fixed(1),
    ChunkCap::Auto,
    ChunkCap::Fixed(usize::MAX),
];
const PARTITIONS: [usize; 3] = [1, 2, 7];

/// The thread sweep: `GG_THREADS` (the CI thread-differential leg) pins a
/// single count, otherwise 1, 2 and 4.
fn thread_counts() -> Vec<usize> {
    match threads_from_env() {
        Some(t) => vec![t],
        None => vec![1, 2, 4],
    }
}

fn config(partitions: usize, threads: usize, chunk_edges: impl Into<ChunkCap>) -> Config {
    Config {
        threads,
        num_partitions: partitions,
        numa: NumaTopology::new(1),
        executor: ExecutorKind::Partitioned,
        chunk_edges: chunk_edges.into(),
        ..Config::default()
    }
}

/// The sequential engine the single-source oracles run on.
fn sequential(el: &EdgeList) -> GraphGrind2 {
    GraphGrind2::new(el, config(1, 1, usize::MAX))
}

fn graphs() -> Vec<(&'static str, EdgeList)> {
    vec![
        (
            "rmat-skewed",
            generators::rmat(8, 3000, RmatParams::skewed(), 7),
        ),
        ("grid-road", generators::grid_road(12, 12, 0.1, 9)),
    ]
}

const SOURCES: [u32; 5] = [0, 3, 17, 64, 99];

#[test]
fn fused_bfs_lanes_bit_identical_across_configs() {
    for (name, el) in graphs() {
        let seq = sequential(&el);
        let oracles: Vec<_> = SOURCES.iter().map(|&s| algorithms::bfs(&seq, s)).collect();
        let max_rounds = oracles.iter().map(|o| o.rounds).max().unwrap();
        for cap in CAPS {
            for p in PARTITIONS {
                for t in thread_counts() {
                    let engine = GraphGrind2::new(&el, config(p, t, cap));
                    let fused = fused_bfs(&engine, &SOURCES);
                    for (k, oracle) in oracles.iter().enumerate() {
                        assert_eq!(
                            fused.dist[k], oracle.level,
                            "{name} lane {k} cap={cap:?} P={p} T={t}"
                        );
                    }
                    assert_eq!(fused.rounds, max_rounds, "{name} cap={cap:?} P={p} T={t}");
                    // The fusion tallies must be live in every config.
                    let c = engine.work_counters();
                    assert!(c.fused_lanes() > 0, "{name} cap={cap:?} P={p} T={t}");
                }
            }
        }
    }
}

#[test]
fn fused_reachability_lanes_bit_identical_across_configs() {
    for (name, el) in graphs() {
        let seq = sequential(&el);
        let oracles: Vec<_> = SOURCES.iter().map(|&s| algorithms::bfs(&seq, s)).collect();
        for cap in CAPS {
            for p in PARTITIONS {
                for t in thread_counts() {
                    let engine = GraphGrind2::new(&el, config(p, t, cap));
                    let reach = fused_reachability(&engine, &SOURCES);
                    for (v, &mask) in reach.iter().enumerate() {
                        for (k, oracle) in oracles.iter().enumerate() {
                            let want = oracle.level[v] != u32::MAX;
                            let got = mask & (1 << k) != 0;
                            assert_eq!(got, want, "{name} v={v} lane {k} cap={cap:?} P={p} T={t}");
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn fused_ppr_lanes_bitwise_equal_to_single_seed_runs() {
    for (name, el) in graphs() {
        let seq = sequential(&el);
        let seeds = [0u32, 17, 99];
        let solo: Vec<_> = seeds
            .iter()
            .map(|&s| fused_ppr(&seq, &[s], 0.15, 1e-4, 40))
            .collect();
        for cap in CAPS {
            for p in PARTITIONS {
                for t in thread_counts() {
                    let engine = GraphGrind2::new(&el, config(p, t, cap));
                    let fused = fused_ppr(&engine, &seeds, 0.15, 1e-4, 40);
                    for (k, s) in solo.iter().enumerate() {
                        assert_eq!(
                            fused.p[k], s.p[0],
                            "{name} lane {k} cap={cap:?} P={p} T={t}"
                        );
                    }
                }
            }
        }
    }
}

/// Strategy: a random directed graph with 2..=60 vertices and 0..200 edges.
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2usize..=60).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..200)
            .prop_map(move |edges| EdgeList::from_edges(n, &edges))
    })
}

/// Random source multiset of size K over the graph, with K pinned at the
/// lane-width boundaries: 1, 63 and 64 (duplicates allowed).
fn arb_graph_and_sources() -> impl Strategy<Value = (EdgeList, Vec<u32>)> {
    arb_graph().prop_flat_map(|el| {
        let n = el.num_vertices() as u32;
        (0usize..3)
            .prop_map(|i| [1usize, 63, 64][i])
            .prop_flat_map(move |k| {
                let el = el.clone();
                proptest::collection::vec(0..n, k..k + 1).prop_map(move |srcs| (el.clone(), srcs))
            })
    })
}

/// Property body (plain function: keeps the `proptest!` macro expansion
/// small). Panics — rather than `prop_assert!`s — are fine here: any
/// failure is a determinism bug worth the full backtrace.
fn check_random_sources(el: &EdgeList, sources: &[u32]) {
    let seq = sequential(el);
    let engine = GraphGrind2::new(el, config(3, 2, ChunkCap::Auto));
    let fused = fused_bfs(&engine, sources);
    let reach = fused_reachability(&engine, sources);
    let ppr = fused_ppr(&engine, sources, 0.2, 1e-3, 20);
    for (k, &s) in sources.iter().enumerate() {
        let oracle = algorithms::bfs(&seq, s);
        assert_eq!(fused.dist[k], oracle.level, "lane {k} source {s}");
        for (v, &mask) in reach.iter().enumerate() {
            let want = oracle.level[v] != u32::MAX;
            let got = mask & (1 << k) != 0;
            assert_eq!(got, want, "reach lane {k} vertex {v}");
        }
        // PPR lanes are *bitwise* equal to the single-seed run — duplicate
        // seeds included, and independent of when sibling lanes retire.
        let solo = fused_ppr(&seq, &[s], 0.2, 1e-3, 20);
        assert_eq!(ppr.p[k], solo.p[0], "ppr lane {k} seed {s}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every lane of a random K-source fused BFS/reachability/PPR batch
    /// agrees with the scalar single-source oracle, on the partitioned
    /// executor.
    #[test]
    fn random_source_sets_agree_with_scalar_oracles(case in arb_graph_and_sources()) {
        let (el, sources) = case;
        check_random_sources(&el, &sources);
    }
}

/// The serving layer's capped-rounds mode drives the resumable runners in
/// arbitrary time-slices. Slicing must be invisible: results and per-lane
/// retirement rounds equal the drained run's, in every configuration —
/// and the retirement rounds themselves are config-independent (they are
/// a pure function of the per-round live-lane word).
#[test]
fn stepped_runners_are_slice_and_config_invariant() {
    // Duplicate seeds on purpose: retiring one copy must not disturb the
    // other's lane.
    let sources = [0u32, 17, 17, 99, 3, 64];
    for (name, el) in graphs() {
        let seq = sequential(&el);
        let drained = fused_bfs(&seq, &sources);
        let drained_ppr = fused_ppr(&seq, &sources, 0.15, 1e-4, 12);
        let mut retire_rounds: Option<Vec<Option<u32>>> = None;
        for cap in CAPS {
            for p in PARTITIONS {
                for t in thread_counts() {
                    let engine = GraphGrind2::new(&el, config(p, t, cap));
                    let mut bfs_run = FusedBfsRun::new(&engine, &sources);
                    let mut ppr_run = FusedPprRun::new(&engine, &sources, 0.15, 1e-4, 12);
                    // Uneven slices: 1, 2, 3, 1, 2, 3, ... rounds at a time.
                    let mut slice = 0usize;
                    while !bfs_run.is_done() || !ppr_run.is_done() {
                        slice = slice % 3 + 1;
                        for _ in 0..slice {
                            bfs_run.step();
                            ppr_run.step();
                        }
                    }
                    for k in 0..sources.len() {
                        assert_eq!(
                            bfs_run.dist(k as u32),
                            &drained.dist[k][..],
                            "{name} bfs lane {k} cap={cap:?} P={p} T={t}"
                        );
                        assert_eq!(
                            ppr_run.mass(k as u32),
                            &drained_ppr.p[k][..],
                            "{name} ppr lane {k} cap={cap:?} P={p} T={t}"
                        );
                    }
                    let rounds: Vec<Option<u32>> = (0..sources.len() as u32)
                        .map(|k| bfs_run.retired_round(k))
                        .collect();
                    match &retire_rounds {
                        None => retire_rounds = Some(rounds),
                        Some(want) => assert_eq!(
                            &rounds, want,
                            "{name} retirement rounds cap={cap:?} P={p} T={t}"
                        ),
                    }
                }
            }
        }
    }
}
