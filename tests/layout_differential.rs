//! Differential harness for the per-partition COO edge layout.
//!
//! The layout policy — a forced uniform [`EdgeOrder`] or the memsim-guided
//! advisor's per-partition mix — only permutes each partition's edge
//! storage order and, through it, the dense kernels' destination *visit*
//! order. Every destination's in-edge fold still walks its CSC slice in
//! CSC order, and the partitioned executor already runs destinations in
//! arbitrary temporal order under work stealing, so the promise is that
//! **the layout policy is invisible in results**: BFS, PR, CC and
//! Bellman-Ford outputs are bit-identical (PR exactly, not approximately)
//! across every policy × partition count × thread count, and the recorded
//! round traces — frontier digests included — agree round for round.
//!
//! The thread list honours `GG_THREADS` (the CI layout-advisor leg runs a
//! 1-thread and a 4-thread pass of this suite).

use graphgrind::algorithms;
use graphgrind::bench::replay::{record_algorithm, replay_algorithms};
use graphgrind::bench::runner::Workload;
use graphgrind::core::config::{threads_from_env, Config, ExecutorKind, LayoutPolicy};
use graphgrind::core::engine::GraphGrind2;
use graphgrind::core::trace::first_divergence;
use graphgrind::graph::edge_list::EdgeList;
use graphgrind::graph::generators::{self, RmatParams};
use graphgrind::graph::ops::symmetrize;
use graphgrind::graph::reorder::EdgeOrder;
use graphgrind::runtime::numa::NumaTopology;

const PARTITIONS: [usize; 3] = [1, 2, 7];

/// Every layout policy the engine accepts: the three forced uniform
/// orders plus the advisor at a sample rate low enough to actually skip
/// edges on these graphs.
fn policies() -> [LayoutPolicy; 4] {
    [
        LayoutPolicy::Fixed(EdgeOrder::Source),
        LayoutPolicy::Fixed(EdgeOrder::Hilbert),
        LayoutPolicy::Fixed(EdgeOrder::Destination),
        LayoutPolicy::Advised { sample_rate: 0.5 },
    ]
}

/// The thread sweep: `GG_THREADS` (the CI thread-differential leg) pins a
/// single count, otherwise 1, 2 and 4.
fn thread_counts() -> Vec<usize> {
    match threads_from_env() {
        Some(t) => vec![t],
        None => vec![1, 2, 4],
    }
}

/// Partitioned-executor configuration with exact partition counts (UMA
/// topology: no rounding) under an explicit layout policy.
fn config(partitions: usize, threads: usize, layout: LayoutPolicy) -> Config {
    Config {
        threads,
        num_partitions: partitions,
        numa: NumaTopology::new(1),
        executor: ExecutorKind::Partitioned,
        layout,
        ..Config::default()
    }
}

/// The sequential engine every configuration must match: one partition on
/// one thread under the default layout.
fn sequential(el: &EdgeList) -> GraphGrind2 {
    GraphGrind2::new(el, config(1, 1, LayoutPolicy::default()))
}

/// Deterministic graphs covering the regimes the layout must not disturb:
/// skewed (dense rounds, hub splitting) and a high-diameter grid (sparse
/// candidate slices).
fn graphs() -> Vec<(&'static str, EdgeList)> {
    vec![
        (
            "rmat-skewed",
            generators::rmat(8, 3000, RmatParams::skewed(), 7),
        ),
        ("grid-road", generators::grid_road(12, 12, 0.1, 9)),
    ]
}

#[test]
fn bfs_bit_identical_across_layouts() {
    for (name, el) in graphs() {
        let seq = algorithms::bfs(&sequential(&el), 0);
        for layout in policies() {
            for p in PARTITIONS {
                for t in thread_counts() {
                    let got = algorithms::bfs(&GraphGrind2::new(&el, config(p, t, layout)), 0);
                    assert_eq!(got.level, seq.level, "{name} layout={layout:?} P={p} T={t}");
                    assert_eq!(
                        got.parent, seq.parent,
                        "{name} layout={layout:?} P={p} T={t}"
                    );
                    assert_eq!(
                        got.rounds, seq.rounds,
                        "{name} layout={layout:?} P={p} T={t}"
                    );
                }
            }
        }
    }
}

#[test]
fn pagerank_bit_identical_across_layouts() {
    for (name, el) in graphs() {
        let seq = algorithms::pagerank(&sequential(&el), 10);
        for layout in policies() {
            for p in PARTITIONS {
                for t in thread_counts() {
                    let got =
                        algorithms::pagerank(&GraphGrind2::new(&el, config(p, t, layout)), 10);
                    // The layout permutes destination *visit* order, but
                    // each destination's f64 fold still walks its CSC
                    // slice in CSC order — equality is exact.
                    assert_eq!(got, seq, "{name} layout={layout:?} P={p} T={t}");
                }
            }
        }
    }
}

#[test]
fn cc_labels_identical_across_layouts() {
    for (name, el) in graphs() {
        let el = symmetrize(&el);
        let want = algorithms::reference::cc_labels(&el);
        assert_eq!(algorithms::cc(&sequential(&el)).label, want, "{name}/seq");
        for layout in policies() {
            for p in PARTITIONS {
                for t in thread_counts() {
                    let got = algorithms::cc(&GraphGrind2::new(&el, config(p, t, layout)));
                    assert_eq!(got.label, want, "{name} layout={layout:?} P={p} T={t}");
                }
            }
        }
    }
}

#[test]
fn bellman_ford_identical_across_layouts() {
    for (name, el) in graphs() {
        let mut el = el;
        graphgrind::graph::weights::attach_integer(&mut el, 12, 0xBF);
        let seq = algorithms::bellman_ford(&sequential(&el), 0);
        for layout in policies() {
            for p in PARTITIONS {
                for t in thread_counts() {
                    let got =
                        algorithms::bellman_ford(&GraphGrind2::new(&el, config(p, t, layout)), 0);
                    assert_eq!(got.dist, seq.dist, "{name} layout={layout:?} P={p} T={t}");
                }
            }
        }
    }
}

/// The determinism contract covers layout decisions: traces recorded under
/// *different* layout policies still agree on every frontier digest, every
/// kernel choice and every output representation, round for round —
/// [`first_divergence`] only compares the per-step layout field when both
/// headers declare the same policy, so a cross-policy diff must come back
/// clean.
#[test]
fn round_traces_agree_across_layouts() {
    let el = generators::rmat(8, 3000, RmatParams::skewed(), 7);
    let threads = threads_from_env().unwrap_or(2);
    for algo in replay_algorithms() {
        let w = Workload::prepare(&el, algo);
        let reference = record_algorithm(&w, &config(4, threads, LayoutPolicy::default()), "rmat");
        for layout in policies() {
            let trace = record_algorithm(&w, &config(4, threads, layout), "rmat");
            assert_eq!(trace.header.layout, layout.label());
            if let Some(d) = first_divergence(&reference, &trace) {
                panic!(
                    "{:?} under {layout:?} diverged from the default layout: {d:?}",
                    algo
                );
            }
        }
    }
}

/// Same-policy recordings are fully comparable, per-step layouts included:
/// the advisor is deterministic, so two advised recordings must agree on
/// every chosen per-partition layout.
#[test]
fn advised_traces_are_reproducible() {
    let el = generators::rmat(8, 3000, RmatParams::skewed(), 7);
    let layout = LayoutPolicy::Advised { sample_rate: 0.5 };
    let w = Workload::prepare(&el, graphgrind::algorithms::Algorithm::Pr);
    let a = record_algorithm(&w, &config(4, 2, layout), "rmat");
    let b = record_algorithm(&w, &config(4, 2, layout), "rmat");
    assert_eq!(a.header.layout, layout.label());
    assert_eq!(first_divergence(&a, &b), None);
}
