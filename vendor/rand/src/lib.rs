//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the (small) subset of the rand 0.8 API the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across platforms,
//! which is all the reproduction's seeded generators require.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the "standard" distribution for the type
    /// (unit interval for floats, uniform for integers, fair coin for bool).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let v = (rng.next_u64() as u128) % span;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Named RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, deterministic. API-compatible stand-in
    /// for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut st);
            }
            // All-zero state is invalid for xoshiro; splitmix64 cannot
            // produce four consecutive zeros, but keep a belt-and-braces fix.
            if s == [0; 4] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u32..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let v = rng.gen::<f64>();
            lo |= v < 0.25;
            hi |= v > 0.75;
        }
        assert!(lo && hi, "samples should spread across [0,1)");
    }
}
