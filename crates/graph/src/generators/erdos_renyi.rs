//! Erdős–Rényi G(n, m) generator: `m` uniformly random directed edges.
//! Used as the flat-degree stand-in for the Yahoo_mem data set.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::edge_list::EdgeList;

/// Generates `m` edges with both endpoints uniform over `0..n`
/// (duplicates/self-loops retained; dedup if a simple graph is required).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(n > 0, "need at least one vertex");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut el = EdgeList::with_capacity(n, m);
    for _ in 0..m {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        el.push(u, v);
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_determinism() {
        let a = erdos_renyi(100, 1000, 3);
        assert_eq!(a.num_vertices(), 100);
        assert_eq!(a.num_edges(), 1000);
        assert_eq!(a, erdos_renyi(100, 1000, 3));
        a.validate().unwrap();
    }

    #[test]
    fn degrees_are_flat() {
        let el = erdos_renyi(200, 40_000, 9);
        let deg = el.out_degrees();
        let avg = 200.0;
        let max = *deg.iter().max().unwrap() as f64;
        // Binomial concentration: max degree stays within ~2x the mean.
        assert!(max < 2.0 * avg, "max {max} vs avg {avg}");
    }
}
