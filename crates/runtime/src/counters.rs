//! Work counters: edges and vertices visited by a traversal.
//!
//! §II.F observes that traversal work grows with the replication factor
//! for partitioned CSR (each replica is loaded and checked) while COO work
//! is constant. These counters make that measurable, and they feed the
//! instruction-count proxy used for MPKI normalisation (Figure 8).
//!
//! To avoid perturbing the measured traversal, workers accumulate locally
//! and flush once per partition/chunk with a single `fetch_add`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregate visit counters.
#[derive(Debug, Default)]
pub struct WorkCounters {
    edges: AtomicU64,
    vertices: AtomicU64,
    /// 64-bit words touched by *dense* next-frontier merges (whole-bitmap
    /// allocations plus spliced segment words). Sparse-output rounds add
    /// nothing here — this is the counter that proves a tiny frontier pays
    /// no `O(|V| / 64)` merge floor.
    merge_words: AtomicU64,
}

impl WorkCounters {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a batch of edge visits.
    #[inline]
    pub fn add_edges(&self, n: u64) {
        self.edges.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds a batch of vertex visits.
    #[inline]
    pub fn add_vertices(&self, n: u64) {
        self.vertices.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds a batch of dense-merge word touches.
    #[inline]
    pub fn add_merge_words(&self, n: u64) {
        self.merge_words.fetch_add(n, Ordering::Relaxed);
    }

    /// Edges visited so far.
    #[inline]
    pub fn edges(&self) -> u64 {
        self.edges.load(Ordering::Relaxed)
    }

    /// Vertices visited so far.
    #[inline]
    pub fn vertices(&self) -> u64 {
        self.vertices.load(Ordering::Relaxed)
    }

    /// Dense-merge words touched so far.
    #[inline]
    pub fn merge_words(&self) -> u64 {
        self.merge_words.load(Ordering::Relaxed)
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.edges.store(0, Ordering::Relaxed);
        self.vertices.store(0, Ordering::Relaxed);
        self.merge_words.store(0, Ordering::Relaxed);
    }
}

/// Per-worker local tally, flushed on drop.
pub struct LocalTally<'a> {
    counters: &'a WorkCounters,
    edges: u64,
    vertices: u64,
}

impl<'a> LocalTally<'a> {
    /// Starts a local tally against `counters`.
    pub fn new(counters: &'a WorkCounters) -> Self {
        LocalTally {
            counters,
            edges: 0,
            vertices: 0,
        }
    }

    /// Counts one edge visit.
    #[inline]
    pub fn edge(&mut self) {
        self.edges += 1;
    }

    /// Counts one vertex visit.
    #[inline]
    pub fn vertex(&mut self) {
        self.vertices += 1;
    }

    /// Counts `n` edge visits.
    #[inline]
    pub fn edges_n(&mut self, n: u64) {
        self.edges += n;
    }
}

impl Drop for LocalTally<'_> {
    fn drop(&mut self) {
        if self.edges > 0 {
            self.counters.add_edges(self.edges);
        }
        if self.vertices > 0 {
            self.counters.add_vertices(self.vertices);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read() {
        let c = WorkCounters::new();
        c.add_edges(10);
        c.add_vertices(3);
        c.add_edges(5);
        c.add_merge_words(7);
        assert_eq!(c.edges(), 15);
        assert_eq!(c.vertices(), 3);
        assert_eq!(c.merge_words(), 7);
        c.reset();
        assert_eq!(c.edges(), 0);
        assert_eq!(c.merge_words(), 0);
    }

    #[test]
    fn tally_flushes_on_drop() {
        let c = WorkCounters::new();
        {
            let mut t = LocalTally::new(&c);
            t.edge();
            t.edge();
            t.vertex();
            t.edges_n(8);
            assert_eq!(c.edges(), 0, "not flushed yet");
        }
        assert_eq!(c.edges(), 10);
        assert_eq!(c.vertices(), 1);
    }

    #[test]
    fn concurrent_tallies() {
        let c = WorkCounters::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut t = LocalTally::new(&c);
                    for _ in 0..1000 {
                        t.edge();
                    }
                });
            }
        });
        assert_eq!(c.edges(), 8000);
    }
}
