//! Work counters: edges and vertices visited by a traversal.
//!
//! §II.F observes that traversal work grows with the replication factor
//! for partitioned CSR (each replica is loaded and checked) while COO work
//! is constant. These counters make that measurable, and they feed the
//! instruction-count proxy used for MPKI normalisation (Figure 8).
//!
//! To avoid perturbing the measured traversal, workers accumulate locally
//! and flush once per partition/chunk with a single `fetch_add`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregate visit counters.
#[derive(Debug, Default)]
pub struct WorkCounters {
    edges: AtomicU64,
    vertices: AtomicU64,
    /// 64-bit words touched by *dense* next-frontier merges (whole-bitmap
    /// allocations plus spliced segment words). Sparse-output rounds add
    /// nothing here — this is the counter that proves a tiny frontier pays
    /// no `O(|V| / 64)` merge floor.
    merge_words: AtomicU64,
    /// Work-stealing chunks spawned by the partitioned executor. Equals the
    /// partition-task count when `chunk_edges` is unbounded; exceeds it as
    /// soon as intra-partition chunking splits a heavy partition.
    chunks: AtomicU64,
    /// Sum of planned CSC edge counts over all spawned chunks (pairs with
    /// [`chunks`](Self::chunks) for the mean chunk size).
    chunk_edges_sum: AtomicU64,
    /// Largest planned CSC edge count of any spawned chunk. Under a fixed
    /// cap the chunking guarantee is
    /// `max_chunk_edges < cap + min(max_degree, cap)`: a chunk closes as
    /// soon as it reaches the cap, and a destination whose in-degree alone
    /// exceeds the cap is split into per-scan sub-chunks of at most `cap`
    /// edges (see [`hub_subchunks`](Self::hub_subchunks)). Under the
    /// adaptive cap a cost model keeps marginal hubs whole, loosening the
    /// bound to `cap + HUB_SPLIT_OVERHEAD_EDGES` for a hub sitting alone
    /// in its chunk.
    max_chunk_edges: AtomicU64,
    /// Mega-hub sub-chunks spawned: chunks covering one slice of a single
    /// destination's in-edge scan. Non-zero exactly when some destination's
    /// in-degree exceeded the (resolved) chunk cap — the observable proof
    /// that hub splitting engaged and `max_chunk_edges` is no longer
    /// bounded below by the top hub's degree.
    hub_subchunks: AtomicU64,
    /// Chunks a worker claimed from another worker's deque. Timing-
    /// dependent diagnostics (unlike every other counter here) — results
    /// never depend on them.
    steals: AtomicU64,
    /// Steals whose thief and victim workers sit in different *physical*
    /// host NUMA domains — work that actually crossed a socket because a
    /// domain ran dry. Zero by construction on a single-domain host,
    /// whatever topology the executor simulates.
    cross_domain_steals: AtomicU64,
    /// Lane bits activated by fused multi-source edge maps: Σ popcount of
    /// the newly set lane masks each fused round emits. With K queries
    /// fused, one round that activates `v` vertices across `b` lane bits
    /// did the frontier work of `b` single-source activations while
    /// scanning each edge once — `fused_lanes / edges` is the fusion
    /// amortisation ratio.
    fused_lanes: AtomicU64,
    /// Lane words touched by *dense* fused-frontier merges (whole
    /// `LaneBitmap` allocations plus spliced segment words — one word per
    /// covered vertex). The fused analogue of
    /// [`merge_words`](Self::merge_words): sparse fused rounds add nothing
    /// here.
    lane_union_words: AtomicU64,
    /// Fused batches dispatched by the serving layer (a continuation slice
    /// of a capped batch counts as a new dispatch — it re-enters the
    /// admission loop).
    batches: AtomicU64,
    /// Sum of lane counts over dispatched batches (pairs with
    /// [`batches`](Self::batches) for the mean lane occupancy — the
    /// admission policy's fill metric).
    batch_lanes_sum: AtomicU64,
    /// Fused rounds executed across all dispatched batches.
    batch_rounds: AtomicU64,
    /// Lanes that retired *before* their batch finished — quiesced and
    /// freed their bit while sibling lanes kept running.
    lanes_retired_early: AtomicU64,
}

impl WorkCounters {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a batch of edge visits.
    #[inline]
    pub fn add_edges(&self, n: u64) {
        self.edges.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds a batch of vertex visits.
    #[inline]
    pub fn add_vertices(&self, n: u64) {
        self.vertices.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds a batch of dense-merge word touches.
    #[inline]
    pub fn add_merge_words(&self, n: u64) {
        self.merge_words.fetch_add(n, Ordering::Relaxed);
    }

    /// Edges visited so far.
    #[inline]
    pub fn edges(&self) -> u64 {
        self.edges.load(Ordering::Relaxed)
    }

    /// Vertices visited so far.
    #[inline]
    pub fn vertices(&self) -> u64 {
        self.vertices.load(Ordering::Relaxed)
    }

    /// Dense-merge words touched so far.
    #[inline]
    pub fn merge_words(&self) -> u64 {
        self.merge_words.load(Ordering::Relaxed)
    }

    /// Records one edge map's chunk plan: `n` chunks spawned, their planned
    /// edge counts summing to `edge_sum` with maximum `edge_max`. All three
    /// are deterministic functions of the plan. An all-empty round may
    /// record `(0, 0, 0)`; [`mean_chunk_edges`](Self::mean_chunk_edges)
    /// stays well-defined (0) in that case.
    pub fn add_chunks(&self, n: u64, edge_sum: u64, edge_max: u64) {
        self.chunks.fetch_add(n, Ordering::Relaxed);
        self.chunk_edges_sum.fetch_add(edge_sum, Ordering::Relaxed);
        self.max_chunk_edges.fetch_max(edge_max, Ordering::Relaxed);
    }

    /// Records one edge map's mega-hub sub-chunk count (sub-chunks are
    /// also counted as ordinary chunks by
    /// [`add_chunks`](Self::add_chunks)).
    pub fn add_hub_subchunks(&self, n: u64) {
        self.hub_subchunks.fetch_add(n, Ordering::Relaxed);
    }

    /// Mega-hub sub-chunks spawned so far.
    #[inline]
    pub fn hub_subchunks(&self) -> u64 {
        self.hub_subchunks.load(Ordering::Relaxed)
    }

    /// Records one edge map's steal tally (`steals` total, of which
    /// `cross_domain` crossed physical host domains).
    pub fn add_steals(&self, steals: u64, cross_domain: u64) {
        self.steals.fetch_add(steals, Ordering::Relaxed);
        self.cross_domain_steals
            .fetch_add(cross_domain, Ordering::Relaxed);
    }

    /// Work-stealing chunks spawned so far.
    #[inline]
    pub fn chunks(&self) -> u64 {
        self.chunks.load(Ordering::Relaxed)
    }

    /// Largest planned edge count of any spawned chunk.
    #[inline]
    pub fn max_chunk_edges(&self) -> u64 {
        self.max_chunk_edges.load(Ordering::Relaxed)
    }

    /// Mean planned edge count per spawned chunk. Returns 0 (not NaN)
    /// before any chunk was planned — a round whose frontier is empty in
    /// every partition plans zero chunks, and reporting code divides by
    /// the chunk count unconditionally.
    pub fn mean_chunk_edges(&self) -> f64 {
        let n = self.chunks();
        if n == 0 {
            return 0.0;
        }
        self.chunk_edges_sum.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Chunks claimed from another worker's deque so far.
    #[inline]
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Steals that crossed NUMA domains so far.
    #[inline]
    pub fn cross_domain_steals(&self) -> u64 {
        self.cross_domain_steals.load(Ordering::Relaxed)
    }

    /// Adds a batch of fused lane-bit activations.
    #[inline]
    pub fn add_fused_lanes(&self, n: u64) {
        self.fused_lanes.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds a batch of dense fused-merge lane-word touches.
    #[inline]
    pub fn add_lane_union_words(&self, n: u64) {
        self.lane_union_words.fetch_add(n, Ordering::Relaxed);
    }

    /// Lane bits activated by fused edge maps so far.
    #[inline]
    pub fn fused_lanes(&self) -> u64 {
        self.fused_lanes.load(Ordering::Relaxed)
    }

    /// Dense fused-merge lane words touched so far.
    #[inline]
    pub fn lane_union_words(&self) -> u64 {
        self.lane_union_words.load(Ordering::Relaxed)
    }

    /// Records one dispatched serving batch: `lanes` queries fused, ran
    /// for `rounds` fused rounds.
    pub fn add_batch(&self, lanes: u64, rounds: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_lanes_sum.fetch_add(lanes, Ordering::Relaxed);
        self.batch_rounds.fetch_add(rounds, Ordering::Relaxed);
    }

    /// Records `n` lanes that retired before their batch finished.
    #[inline]
    pub fn add_lanes_retired_early(&self, n: u64) {
        self.lanes_retired_early.fetch_add(n, Ordering::Relaxed);
    }

    /// Serving batches dispatched so far.
    #[inline]
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Fused rounds executed across dispatched batches so far.
    #[inline]
    pub fn batch_rounds(&self) -> u64 {
        self.batch_rounds.load(Ordering::Relaxed)
    }

    /// Lanes retired before their batch finished so far.
    #[inline]
    pub fn lanes_retired_early(&self) -> u64 {
        self.lanes_retired_early.load(Ordering::Relaxed)
    }

    /// Mean lane count per dispatched batch. Returns 0 (not NaN) before
    /// any batch was dispatched.
    pub fn mean_lane_occupancy(&self) -> f64 {
        let n = self.batches();
        if n == 0 {
            return 0.0;
        }
        self.batch_lanes_sum.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Reads every accumulating counter at once. `max_chunk_edges` is
    /// deliberately absent: it accumulates with `fetch_max`, so per-round
    /// deltas (`CounterSnapshot::delta_since`) are not defined for it.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            edges: self.edges(),
            vertices: self.vertices(),
            merge_words: self.merge_words(),
            chunks: self.chunks(),
            hub_subchunks: self.hub_subchunks(),
            steals: self.steals(),
            cross_domain_steals: self.cross_domain_steals(),
            fused_lanes: self.fused_lanes(),
            lane_union_words: self.lane_union_words(),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.edges.store(0, Ordering::Relaxed);
        self.vertices.store(0, Ordering::Relaxed);
        self.merge_words.store(0, Ordering::Relaxed);
        self.chunks.store(0, Ordering::Relaxed);
        self.chunk_edges_sum.store(0, Ordering::Relaxed);
        self.max_chunk_edges.store(0, Ordering::Relaxed);
        self.hub_subchunks.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.cross_domain_steals.store(0, Ordering::Relaxed);
        self.fused_lanes.store(0, Ordering::Relaxed);
        self.lane_union_words.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.batch_lanes_sum.store(0, Ordering::Relaxed);
        self.batch_rounds.store(0, Ordering::Relaxed);
        self.lanes_retired_early.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time reading of every accumulating [`WorkCounters`] field,
/// taken before and after a round so the record/replay harness can
/// attribute work to individual rounds (the counters themselves are
/// cumulative across a whole run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Edges visited.
    pub edges: u64,
    /// Vertices visited.
    pub vertices: u64,
    /// Dense-merge words touched.
    pub merge_words: u64,
    /// Work-stealing chunks spawned.
    pub chunks: u64,
    /// Mega-hub sub-chunks spawned.
    pub hub_subchunks: u64,
    /// Chunks claimed from another worker's deque (timing-dependent).
    pub steals: u64,
    /// Steals that crossed physical host domains (timing-dependent).
    pub cross_domain_steals: u64,
    /// Lane bits activated by fused multi-source edge maps.
    pub fused_lanes: u64,
    /// Dense fused-merge lane words touched.
    pub lane_union_words: u64,
}

impl CounterSnapshot {
    /// Field-wise difference `self - earlier`: the work attributable to
    /// whatever ran between the two snapshots. Saturating, so a `reset()`
    /// between snapshots degrades to zeros instead of wrapping.
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            edges: self.edges.saturating_sub(earlier.edges),
            vertices: self.vertices.saturating_sub(earlier.vertices),
            merge_words: self.merge_words.saturating_sub(earlier.merge_words),
            chunks: self.chunks.saturating_sub(earlier.chunks),
            hub_subchunks: self.hub_subchunks.saturating_sub(earlier.hub_subchunks),
            steals: self.steals.saturating_sub(earlier.steals),
            cross_domain_steals: self
                .cross_domain_steals
                .saturating_sub(earlier.cross_domain_steals),
            fused_lanes: self.fused_lanes.saturating_sub(earlier.fused_lanes),
            lane_union_words: self
                .lane_union_words
                .saturating_sub(earlier.lane_union_words),
        }
    }
}

/// Per-worker local tally, flushed on drop.
pub struct LocalTally<'a> {
    counters: &'a WorkCounters,
    edges: u64,
    vertices: u64,
}

impl<'a> LocalTally<'a> {
    /// Starts a local tally against `counters`.
    pub fn new(counters: &'a WorkCounters) -> Self {
        LocalTally {
            counters,
            edges: 0,
            vertices: 0,
        }
    }

    /// Counts one edge visit.
    #[inline]
    pub fn edge(&mut self) {
        self.edges += 1;
    }

    /// Counts one vertex visit.
    #[inline]
    pub fn vertex(&mut self) {
        self.vertices += 1;
    }

    /// Counts `n` edge visits.
    #[inline]
    pub fn edges_n(&mut self, n: u64) {
        self.edges += n;
    }
}

impl Drop for LocalTally<'_> {
    fn drop(&mut self) {
        if self.edges > 0 {
            self.counters.add_edges(self.edges);
        }
        if self.vertices > 0 {
            self.counters.add_vertices(self.vertices);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read() {
        let c = WorkCounters::new();
        c.add_edges(10);
        c.add_vertices(3);
        c.add_edges(5);
        c.add_merge_words(7);
        assert_eq!(c.edges(), 15);
        assert_eq!(c.vertices(), 3);
        assert_eq!(c.merge_words(), 7);
        c.reset();
        assert_eq!(c.edges(), 0);
        assert_eq!(c.merge_words(), 0);
    }

    #[test]
    fn chunk_and_steal_counters_accumulate_and_reset() {
        let c = WorkCounters::new();
        assert_eq!(c.mean_chunk_edges(), 0.0);
        c.add_chunks(3, 300, 150);
        c.add_chunks(1, 100, 100);
        c.add_steals(5, 2);
        c.add_hub_subchunks(2);
        assert_eq!(c.chunks(), 4);
        assert_eq!(c.max_chunk_edges(), 150);
        assert_eq!(c.mean_chunk_edges(), 100.0);
        assert_eq!(c.hub_subchunks(), 2);
        assert_eq!(c.steals(), 5);
        assert_eq!(c.cross_domain_steals(), 2);
        c.reset();
        assert_eq!(c.chunks(), 0);
        assert_eq!(c.max_chunk_edges(), 0);
        assert_eq!(c.hub_subchunks(), 0);
        assert_eq!(c.steals(), 0);
        assert_eq!(c.cross_domain_steals(), 0);
    }

    #[test]
    fn fused_counters_accumulate_and_reset() {
        let c = WorkCounters::new();
        c.add_fused_lanes(5);
        c.add_fused_lanes(7);
        c.add_lane_union_words(100);
        assert_eq!(c.fused_lanes(), 12);
        assert_eq!(c.lane_union_words(), 100);
        let snap = c.snapshot();
        assert_eq!(snap.fused_lanes, 12);
        assert_eq!(snap.lane_union_words, 100);
        c.reset();
        assert_eq!(c.fused_lanes(), 0);
        assert_eq!(c.lane_union_words(), 0);
    }

    /// The all-empty round: a plan with zero chunks must keep the mean
    /// well-defined (0, not NaN from a 0/0 division) — reporting code
    /// (`repro load_balance`, the differential suites) reads the mean
    /// unconditionally after rounds that may have planned nothing.
    #[test]
    fn mean_chunk_edges_is_zero_when_no_chunks_were_planned() {
        let c = WorkCounters::new();
        c.add_chunks(0, 0, 0);
        assert_eq!(c.chunks(), 0);
        let mean = c.mean_chunk_edges();
        assert!(!mean.is_nan(), "0/0 must not leak out as NaN");
        assert_eq!(mean, 0.0);
        // Still zero after a reset.
        c.reset();
        assert_eq!(c.mean_chunk_edges(), 0.0);
    }

    #[test]
    fn snapshot_deltas_attribute_work_between_readings() {
        let c = WorkCounters::new();
        c.add_edges(100);
        c.add_chunks(2, 50, 30);
        let before = c.snapshot();
        c.add_edges(7);
        c.add_vertices(3);
        c.add_chunks(4, 80, 40);
        c.add_hub_subchunks(1);
        c.add_steals(2, 1);
        c.add_fused_lanes(9);
        c.add_lane_union_words(11);
        let delta = c.snapshot().delta_since(&before);
        assert_eq!(delta.edges, 7);
        assert_eq!(delta.vertices, 3);
        assert_eq!(delta.chunks, 4);
        assert_eq!(delta.hub_subchunks, 1);
        assert_eq!(delta.steals, 2);
        assert_eq!(delta.cross_domain_steals, 1);
        assert_eq!(delta.fused_lanes, 9);
        assert_eq!(delta.lane_union_words, 11);
        // A reset between snapshots saturates to zero, not wraparound.
        c.reset();
        let after_reset = c.snapshot().delta_since(&before);
        assert_eq!(after_reset, CounterSnapshot::default());
    }

    /// Serving counters are batch-granular (not per-round), so they stay
    /// out of `CounterSnapshot` — the record/replay trace format is
    /// per-round and must not change shape under a serving workload.
    #[test]
    fn batch_counters_accumulate_average_and_reset() {
        let c = WorkCounters::new();
        assert_eq!(c.mean_lane_occupancy(), 0.0);
        c.add_batch(64, 9);
        c.add_batch(16, 5);
        c.add_lanes_retired_early(30);
        assert_eq!(c.batches(), 2);
        assert_eq!(c.batch_rounds(), 14);
        assert_eq!(c.mean_lane_occupancy(), 40.0);
        assert_eq!(c.lanes_retired_early(), 30);
        c.reset();
        assert_eq!(c.batches(), 0);
        assert_eq!(c.batch_rounds(), 0);
        assert_eq!(c.lanes_retired_early(), 0);
        assert!(!c.mean_lane_occupancy().is_nan());
        assert_eq!(c.mean_lane_occupancy(), 0.0);
    }

    #[test]
    fn tally_flushes_on_drop() {
        let c = WorkCounters::new();
        {
            let mut t = LocalTally::new(&c);
            t.edge();
            t.edge();
            t.vertex();
            t.edges_n(8);
            assert_eq!(c.edges(), 0, "not flushed yet");
        }
        assert_eq!(c.edges(), 10);
        assert_eq!(c.vertices(), 1);
    }

    #[test]
    fn concurrent_tallies() {
        let c = WorkCounters::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut t = LocalTally::new(&c);
                    for _ in 0..1000 {
                        t.edge();
                    }
                });
            }
        });
        assert_eq!(c.edges(), 8000);
    }
}
