//! Fused multi-source queries: K concurrent traversals (K ≤ 64) advanced
//! by **one** edge-map pass per round.
//!
//! Each query owns a lane of the
//! [`FusedFrontier`](gg_core::fused::FusedFrontier); one CSC scan serves
//! every lane whose source set touches the scanned edge, so K queries that
//! would each traverse the same hub edges sequentially traverse them once.
//! All three algorithms here are **lane-wise bit-identical** to running the
//! same query alone in lane 0: per-lane state never reads another lane, and
//! the executor replays hub splits and folds reduce quanta in a
//! configuration-independent order.
//!
//! * [`fused_bfs`] — per-lane BFS distance = the round at which the lane
//!   bit first reaches the vertex;
//! * [`fused_reachability`] — per-vertex bitmask of the seeds that reach
//!   it;
//! * [`fused_ppr`] — K personalized-PageRank queries sharing one residual
//!   sweep per round ([`MultiSourceReduce`] with quantum-folded f64
//!   accumulation).
//!
//! ## Stepping runners
//!
//! The drain loops above are thin wrappers over [`FusedBfsRun`] /
//! [`FusedPprRun`]: resumable runners that advance one fused round per
//! `step()` and track **per-lane early retirement**
//! ([`LaneRetirement`]) — a lane whose frontier empties quiesces and its
//! per-query result is final from that round on, while sibling lanes keep
//! running. The serving layer steps runners directly so it can return a
//! retired lane's result mid-batch and slice a long batch into
//! capped-round continuations; because retirement is driven by
//! [`FusedFrontier::live_lanes`] (a pure function of the frontier) and a
//! retired lane holds no frontier bits, stepping in slices of any size
//! yields bit-identical results to draining in one go.

use std::sync::atomic::{AtomicU64, Ordering};

use gg_core::engine::GraphGrind2;
use gg_core::fused::{lane_mask, FusedFrontier, LaneRetirement, MultiSourceOp, MultiSourceReduce};
use gg_core::Engine;
use gg_graph::types::VertexId;
use gg_runtime::atomics::AtomicF64;

/// Result of a fused K-source BFS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusedBfsResult {
    /// `dist[k][v]` = BFS distance from `sources[k]` to `v`
    /// (`u32::MAX` = unreached).
    pub dist: Vec<Vec<u32>>,
    /// Number of fused edge-map rounds executed.
    pub rounds: usize,
}

/// Claim-once visitation over all lanes: one `fetch_or` both tests and
/// sets, so the exclusive (single-writer) path never double-activates.
struct FusedVisitOp {
    visited: Vec<AtomicU64>,
    mask: u64,
}

impl FusedVisitOp {
    fn new(n: usize, seeds: &[VertexId]) -> Self {
        let visited: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        for (k, &s) in seeds.iter().enumerate() {
            visited[s as usize].fetch_or(1u64 << k, Ordering::Relaxed);
        }
        FusedVisitOp {
            visited,
            mask: lane_mask(seeds.len() as u32),
        }
    }
}

impl MultiSourceOp for FusedVisitOp {
    #[inline]
    fn update(&self, _src: VertexId, dst: VertexId, _w: f32, src_lanes: u64) -> u64 {
        let prev = self.visited[dst as usize].fetch_or(src_lanes, Ordering::Relaxed);
        src_lanes & !prev
    }

    #[inline]
    fn cond(&self, dst: VertexId) -> u64 {
        self.mask & !self.visited[dst as usize].load(Ordering::Relaxed)
    }
}

/// A resumable fused BFS/reachability batch: one fused edge-map round per
/// [`step`](Self::step), with per-lane early retirement.
///
/// Constructed with or without distance tracking
/// ([`new`](Self::new) / [`reach_only`](Self::reach_only) — a
/// reachability batch over K lanes would otherwise pay `K · |V| · 4` bytes
/// of distances it never reads). Stepping to completion is exactly the
/// [`fused_bfs`] loop; a retired lane's result never changes after its
/// retirement round because the lane has no frontier bits left to expand.
pub struct FusedBfsRun<'a> {
    engine: &'a GraphGrind2,
    op: FusedVisitOp,
    frontier: FusedFrontier,
    /// `dist[k][v]`; empty when constructed reach-only.
    dist: Vec<Vec<u32>>,
    depth: u32,
    retirement: LaneRetirement,
}

impl<'a> FusedBfsRun<'a> {
    /// A distance-tracking batch: lane `k` computes BFS levels from
    /// `sources[k]` (K ≤ 64; duplicate sources are fine, the lanes just
    /// share frontier bits).
    pub fn new(engine: &'a GraphGrind2, sources: &[VertexId]) -> Self {
        let mut run = Self::reach_only(engine, sources);
        let n = engine.num_vertices();
        run.dist = vec![vec![u32::MAX; n]; sources.len()];
        for (k, &s) in sources.iter().enumerate() {
            run.dist[k][s as usize] = 0;
        }
        run
    }

    /// A visited-only batch for reachability queries: no per-lane
    /// distance vectors are allocated.
    pub fn reach_only(engine: &'a GraphGrind2, sources: &[VertexId]) -> Self {
        let n = engine.num_vertices();
        let op = FusedVisitOp::new(n, sources);
        let frontier = engine.fused_frontier(sources);
        let retirement = LaneRetirement::new(frontier.live_lanes());
        FusedBfsRun {
            engine,
            op,
            frontier,
            dist: Vec::new(),
            depth: 0,
            retirement,
        }
    }

    /// Advances the batch one fused round; returns the lanes that retired
    /// this round (empty frontier ⇒ their results are final). No-op on a
    /// finished batch.
    pub fn step(&mut self) -> u64 {
        if self.is_done() {
            return 0;
        }
        let next = self.engine.fused_edge_map(&self.frontier, &self.op);
        self.depth += 1;
        if !self.dist.is_empty() {
            let depth = self.depth;
            let dist = &mut self.dist;
            next.for_each(|v, m| {
                let mut lanes = m;
                while lanes != 0 {
                    let k = lanes.trailing_zeros() as usize;
                    lanes &= lanes - 1;
                    dist[k][v as usize] = depth;
                }
            });
        }
        let newly = self.retirement.observe(self.depth, next.live_lanes());
        // Free the retired lanes' bits. A retired lane has no frontier
        // bits by definition, so this is structurally a no-op on the
        // surviving rounds — results cannot change.
        self.frontier = if newly != 0 {
            next.retain_lanes(self.retirement.active())
        } else {
            next
        };
        newly
    }

    /// True when every lane has quiesced.
    pub fn is_done(&self) -> bool {
        self.frontier.is_empty()
    }

    /// The lanes still expanding.
    pub fn active_lanes(&self) -> u64 {
        self.retirement.active()
    }

    /// Fused rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.depth as usize
    }

    /// The round at which lane `k` retired, if it has.
    pub fn retired_round(&self, k: u32) -> Option<u32> {
        self.retirement.retired_round(k)
    }

    /// Lane `k`'s distance vector (distance-tracking batches only).
    ///
    /// # Panics
    /// Panics on a [`reach_only`](Self::reach_only) batch.
    pub fn dist(&self, k: u32) -> &[u32] {
        &self.dist[k as usize]
    }

    /// Per-vertex reachability masks: bit `k` of entry `v` is set iff
    /// `sources[k]` has reached `v` so far.
    pub fn reach_masks(&self) -> Vec<u64> {
        self.op
            .visited
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Finishes a drained distance batch.
    pub fn into_result(self) -> FusedBfsResult {
        debug_assert!(self.is_done());
        FusedBfsResult {
            dist: self.dist,
            rounds: self.depth as usize,
        }
    }
}

/// Runs K fused BFS traversals, one per entry of `sources` (K ≤ 64).
///
/// Lane `k` of the result is bit-identical to `bfs(engine, sources[k])`
/// levels: the fused rounds advance every lane in lockstep and a lane's
/// distance is the round at which its bit first reaches the vertex.
pub fn fused_bfs(engine: &GraphGrind2, sources: &[VertexId]) -> FusedBfsResult {
    let mut run = FusedBfsRun::new(engine, sources);
    while !run.is_done() {
        run.step();
    }
    run.into_result()
}

/// Runs K fused reachability queries; returns one mask per vertex whose
/// bit `k` is set iff `sources[k]` reaches the vertex (seeds reach
/// themselves).
pub fn fused_reachability(engine: &GraphGrind2, sources: &[VertexId]) -> Vec<u64> {
    let mut run = FusedBfsRun::reach_only(engine, sources);
    while !run.is_done() {
        run.step();
    }
    run.reach_masks()
}

/// Result of a fused K-seed personalized PageRank.
#[derive(Clone, Debug, PartialEq)]
pub struct FusedPprResult {
    /// `p[k][v]` = PPR mass of `v` for seed `sources[k]`.
    pub p: Vec<Vec<f64>>,
    /// Fused residual-sweep rounds executed (bounded by `max_rounds`).
    pub rounds: usize,
}

/// One fused residual sweep: the active vertices' residuals are frozen
/// into a sorted sparse table before the edge map, so `accumulate` is a
/// read-only lookup and the per-quantum f64 folds are bit-identical
/// across partitions/threads/chunk caps (and across K: lane `k` folds the
/// same add sequence whether or not other lanes ride along).
struct FusedPprOp<'a> {
    /// Active vertices this round, ascending (the frontier's vertex set).
    push_verts: &'a [VertexId],
    /// `(1 - alpha) * r / deg_out`, lane-major per active vertex.
    push_scaled: &'a [f64],
    /// Residuals, lane-major per vertex (`r[v * kk + k]`); single-writer
    /// per destination within a round.
    r: &'a [AtomicF64],
    kk: usize,
    eps: f64,
}

/// Per-quantum accumulator: one f64 per lane plus the touched-lane mask.
struct PprAcc {
    vals: [f64; 64],
    touched: u64,
}

impl FusedPprOp<'_> {
    #[inline]
    fn scaled_of(&self, src: VertexId) -> Option<&[f64]> {
        let i = self.push_verts.binary_search(&src).ok()?;
        Some(&self.push_scaled[i * self.kk..(i + 1) * self.kk])
    }

    /// Adds `add` to lane `k` of `dst`'s residual; reports a threshold
    /// crossing. Exclusive: the executor guarantees one writer per `dst`.
    #[inline]
    fn deposit(&self, dst: VertexId, k: usize, add: f64) -> bool {
        let slot = &self.r[dst as usize * self.kk + k];
        let prev = slot.load();
        slot.store(prev + add);
        prev <= self.eps && prev + add > self.eps
    }
}

impl MultiSourceOp for FusedPprOp<'_> {
    /// Single-edge equivalent of one accumulate+apply; only exercised if
    /// a non-reduce path runs this op (the fused engine folds by quanta).
    fn update(&self, src: VertexId, dst: VertexId, _w: f32, src_lanes: u64) -> u64 {
        let Some(scaled) = self.scaled_of(src) else {
            return 0;
        };
        let mut new = 0u64;
        let mut lanes = src_lanes;
        while lanes != 0 {
            let k = lanes.trailing_zeros() as usize;
            lanes &= lanes - 1;
            if self.deposit(dst, k, scaled[k]) {
                new |= 1u64 << k;
            }
        }
        new
    }
}

impl MultiSourceReduce for FusedPprOp<'_> {
    type Acc = PprAcc;

    #[inline]
    fn identity(&self) -> PprAcc {
        PprAcc {
            vals: [0.0; 64],
            touched: 0,
        }
    }

    #[inline]
    fn accumulate(&self, acc: &mut PprAcc, src: VertexId, _w: f32, src_lanes: u64) {
        let Some(scaled) = self.scaled_of(src) else {
            return;
        };
        let mut lanes = src_lanes;
        while lanes != 0 {
            let k = lanes.trailing_zeros() as usize;
            lanes &= lanes - 1;
            acc.vals[k] += scaled[k];
            acc.touched |= 1u64 << k;
        }
    }

    #[inline]
    fn apply(&self, dst: VertexId, acc: &PprAcc) -> u64 {
        let mut new = 0u64;
        let mut lanes = acc.touched;
        while lanes != 0 {
            let k = lanes.trailing_zeros() as usize;
            lanes &= lanes - 1;
            if self.deposit(dst, k, acc.vals[k]) {
                new |= 1u64 << k;
            }
        }
        new
    }
}

/// Runs K fused personalized-PageRank queries sharing one residual sweep
/// per round (forward-push with teleport `alpha`, residual threshold
/// `eps`, at most `max_rounds` sweeps).
///
/// Each round freezes the active residuals, settles `alpha · r` into `p`,
/// and pushes `(1 - alpha) · r / deg_out` along out-edges in one fused
/// [`MultiSourceReduce`] pass; a lane re-activates a vertex when its
/// residual crosses `eps`. Mass at zero-out-degree vertices settles
/// entirely into `p` (no dangling redistribution). Lane `k` is bit-identical
/// to running the same seed alone: residual folds group by fixed quanta in
/// CSC scan order regardless of which other lanes are live.
pub fn fused_ppr(
    engine: &GraphGrind2,
    sources: &[VertexId],
    alpha: f64,
    eps: f64,
    max_rounds: usize,
) -> FusedPprResult {
    let mut run = FusedPprRun::new(engine, sources, alpha, eps, max_rounds);
    while !run.is_done() {
        run.step();
    }
    run.into_result()
}

/// A resumable fused PPR batch: one residual sweep per
/// [`step`](Self::step), with per-lane early retirement — the stepping
/// analogue of [`fused_ppr`], which is a drain loop over this runner.
///
/// A lane retires when its residual frontier empties (converged below
/// `eps`) or, together with every survivor, when the sweep budget
/// `max_rounds` runs out — the budget exhaustion force-retires the batch
/// exactly where the drain loop stops, so settled masses are identical.
pub struct FusedPprRun<'a> {
    engine: &'a GraphGrind2,
    degrees: &'a [u32],
    p: Vec<Vec<f64>>,
    r: Vec<AtomicF64>,
    kk: usize,
    alpha: f64,
    eps: f64,
    max_rounds: usize,
    frontier: FusedFrontier,
    rounds: usize,
    retirement: LaneRetirement,
    push_verts: Vec<VertexId>,
    push_scaled: Vec<f64>,
}

impl<'a> FusedPprRun<'a> {
    /// A K-seed batch (K ≤ 64): lane `k` computes PPR from `sources[k]`
    /// with teleport `alpha` and threshold `eps`, within a shared budget
    /// of `max_rounds` sweeps.
    pub fn new(
        engine: &'a GraphGrind2,
        sources: &[VertexId],
        alpha: f64,
        eps: f64,
        max_rounds: usize,
    ) -> Self {
        let n = engine.num_vertices();
        let kk = sources.len();
        assert!(kk <= 64, "at most 64 fused lanes");
        let p = vec![vec![0.0f64; n]; kk];
        let r: Vec<AtomicF64> = (0..n * kk).map(|_| AtomicF64::new(0.0)).collect();
        for (k, &s) in sources.iter().enumerate() {
            r[s as usize * kk + k].store(1.0);
        }
        let frontier = engine.fused_frontier(sources);
        let retirement = LaneRetirement::new(frontier.live_lanes());
        FusedPprRun {
            engine,
            degrees: engine.store().out_degrees(),
            p,
            r,
            kk,
            alpha,
            eps,
            max_rounds,
            frontier,
            rounds: 0,
            retirement,
            push_verts: Vec::new(),
            push_scaled: Vec::new(),
        }
    }

    /// Advances the batch one residual sweep; returns the lanes that
    /// retired this round (converged, or force-retired by the exhausted
    /// sweep budget). No-op on a finished batch.
    pub fn step(&mut self) -> u64 {
        if self.is_done() {
            return 0;
        }
        // Freeze: settle alpha·r into p, scale the remainder for pushing,
        // and zero the residuals of every active vertex so deposits made
        // this round start from a clean slate.
        self.push_verts.clear();
        self.push_scaled.clear();
        let FusedPprRun {
            degrees,
            p,
            r,
            kk,
            alpha,
            push_verts,
            push_scaled,
            frontier,
            ..
        } = self;
        let (kk, alpha) = (*kk, *alpha);
        frontier.for_each(|v, m| {
            push_verts.push(v);
            let deg = degrees[v as usize] as f64;
            let base = push_scaled.len();
            push_scaled.resize(base + kk, 0.0);
            let mut lanes = m;
            while lanes != 0 {
                let k = lanes.trailing_zeros() as usize;
                lanes &= lanes - 1;
                let slot = &r[v as usize * kk + k];
                let res = slot.load();
                slot.store(0.0);
                if deg > 0.0 {
                    p[k][v as usize] += alpha * res;
                    push_scaled[base + k] = (1.0 - alpha) * res / deg;
                } else {
                    p[k][v as usize] += res;
                }
            }
        });
        let op = FusedPprOp {
            push_verts: &self.push_verts,
            push_scaled: &self.push_scaled,
            r: &self.r,
            kk,
            eps: self.eps,
        };
        let next = self.engine.fused_edge_map_reduce(&self.frontier, &op);
        self.rounds += 1;
        let mut newly = self
            .retirement
            .observe(self.rounds as u32, next.live_lanes());
        if self.rounds >= self.max_rounds {
            // Budget exhausted: the drain loop stops here, so every
            // survivor's settled mass is final — force-retire them.
            newly |= self.retirement.finish(self.rounds as u32);
            self.frontier = FusedFrontier::empty(next.universe(), next.num_lanes());
        } else {
            self.frontier = if newly != 0 {
                next.retain_lanes(self.retirement.active())
            } else {
                next
            };
        }
        newly
    }

    /// True when every lane has retired (converged or out of budget).
    pub fn is_done(&self) -> bool {
        self.frontier.is_empty()
    }

    /// The lanes still sweeping.
    pub fn active_lanes(&self) -> u64 {
        self.retirement.active()
    }

    /// Residual sweeps executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The round at which lane `k` retired, if it has.
    pub fn retired_round(&self, k: u32) -> Option<u32> {
        self.retirement.retired_round(k)
    }

    /// Lane `k`'s settled mass vector so far.
    pub fn mass(&self, k: u32) -> &[f64] {
        &self.p[k as usize]
    }

    /// Finishes a drained batch.
    pub fn into_result(self) -> FusedPprResult {
        debug_assert!(self.is_done());
        FusedPprResult {
            p: self.p,
            rounds: self.rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use gg_core::config::Config;
    use gg_graph::generators;

    fn engine_for(el: &gg_graph::edge_list::EdgeList) -> GraphGrind2 {
        GraphGrind2::new(el, Config::partitioned_for_tests())
    }

    #[test]
    fn fused_bfs_lanes_match_single_source_runs() {
        let el = generators::rmat(9, 4000, generators::RmatParams::skewed(), 8);
        let engine = engine_for(&el);
        let sources = [0u32, 7, 99, 311];
        let fused = fused_bfs(&engine, &sources);
        for (k, &s) in sources.iter().enumerate() {
            let solo = bfs(&engine, s);
            assert_eq!(fused.dist[k], solo.level, "lane {k} (source {s})");
        }
    }

    #[test]
    fn fused_reachability_matches_bfs_reachability() {
        let el = gg_graph::edge_list::EdgeList::from_edges(7, &[(0, 1), (1, 2), (4, 5), (5, 6)]);
        let engine = engine_for(&el);
        let reach = fused_reachability(&engine, &[0, 4]);
        assert_eq!(reach[2], 0b01); // reached by seed 0 only
        assert_eq!(reach[6], 0b10); // reached by seed 4 only
        assert_eq!(reach[3], 0); // isolated
        assert_eq!(reach[0], 0b01); // seeds reach themselves
    }

    #[test]
    fn fused_ppr_lanes_match_single_seed_runs() {
        let el = generators::rmat(8, 2500, generators::RmatParams::skewed(), 3);
        let engine = engine_for(&el);
        let sources = [3u32, 42, 100];
        let fused = fused_ppr(&engine, &sources, 0.15, 1e-4, 50);
        for (k, &s) in sources.iter().enumerate() {
            let solo = fused_ppr(&engine, &[s], 0.15, 1e-4, 50);
            assert_eq!(fused.p[k], solo.p[0], "lane {k} (seed {s})");
        }
    }

    /// Early retirement must be invisible in the results: lanes with very
    /// different depths retire at different rounds, yet every lane matches
    /// its solo run and the retirement round is the round after the
    /// lane's last expansion.
    #[test]
    fn bfs_runner_retires_lanes_at_their_quiescence_round() {
        // A path 0→1→…→9 plus an isolated vertex: lane depths differ.
        let edges: Vec<(u32, u32)> = (0..9).map(|v| (v, v + 1)).collect();
        let el = gg_graph::edge_list::EdgeList::from_edges(11, &edges);
        let engine = engine_for(&el);
        // Lane 0: full path (9 rounds of expansion). Lane 1: tail vertex,
        // nothing to expand. Lane 2: isolated vertex 10.
        let sources = [0u32, 9, 10];
        let mut run = FusedBfsRun::new(&engine, &sources);
        assert_eq!(run.active_lanes(), 0b111);
        let mut retired_at = [0u32; 3];
        while !run.is_done() {
            let newly = run.step();
            let mut m = newly;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                m &= m - 1;
                retired_at[k] = run.rounds() as u32;
            }
        }
        // Lanes 1 and 2 have empty frontiers after round 1; lane 0 after
        // round 10 (round 10 activates nothing past vertex 9).
        assert_eq!(retired_at, [10, 1, 1]);
        for (k, &s) in sources.iter().enumerate() {
            assert_eq!(run.retired_round(k as u32), Some(retired_at[k]));
            let solo = bfs(&engine, s);
            assert_eq!(run.dist(k as u32), &solo.level[..], "lane {k}");
        }
        assert_eq!(run.active_lanes(), 0);
        assert_eq!(run.rounds(), 10);
    }

    /// Stepping a runner in arbitrary slices (the serving layer's
    /// capped-round continuations) must be bit-identical to draining it in
    /// one go — for BFS and PPR alike.
    #[test]
    fn stepped_runners_match_drained_runs_exactly() {
        let el = generators::rmat(8, 2500, generators::RmatParams::skewed(), 5);
        let engine = engine_for(&el);
        let sources = [3u32, 42, 42, 100, 7];

        let drained = fused_bfs(&engine, &sources);
        let mut run = FusedBfsRun::new(&engine, &sources);
        // Uneven slice sizes: 1, 2, 3, 1, 2, ...
        let mut slice = 1usize;
        while !run.is_done() {
            for _ in 0..slice {
                run.step();
            }
            slice = slice % 3 + 1;
        }
        assert_eq!(run.rounds(), drained.rounds);
        let stepped = run.into_result();
        assert_eq!(stepped, drained);

        let pdrained = fused_ppr(&engine, &sources, 0.15, 1e-4, 9);
        let mut prun = FusedPprRun::new(&engine, &sources, 0.15, 1e-4, 9);
        let mut slice = 2usize;
        while !prun.is_done() {
            for _ in 0..slice {
                prun.step();
            }
            slice = slice % 3 + 1;
        }
        assert_eq!(prun.rounds(), pdrained.rounds);
        let pstepped = prun.into_result();
        assert_eq!(pstepped.p, pdrained.p);
    }

    /// The PPR budget force-retires survivors exactly where the drain
    /// loop used to stop.
    #[test]
    fn ppr_runner_budget_exhaustion_retires_survivors() {
        let n = 12usize;
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
        let el = gg_graph::edge_list::EdgeList::from_edges(n, &edges);
        let engine = engine_for(&el);
        // eps tiny, budget small: the cycle never converges on its own.
        let mut run = FusedPprRun::new(&engine, &[0, 5], 0.2, 1e-12, 4);
        let mut total_retired = 0u64;
        while !run.is_done() {
            total_retired |= run.step();
        }
        assert_eq!(run.rounds(), 4);
        assert_eq!(total_retired, 0b11);
        assert_eq!(run.retired_round(0), Some(4));
        assert_eq!(run.retired_round(1), Some(4));
        let budget_limited = run.into_result();
        let drained = fused_ppr(&engine, &[0, 5], 0.2, 1e-12, 4);
        assert_eq!(budget_limited.p, drained.p);
        assert_eq!(budget_limited.rounds, drained.rounds);
    }

    #[test]
    fn fused_ppr_conserves_mass_on_a_cycle() {
        // On a cycle every vertex has out-degree 1, so no mass is lost:
        // settled p plus outstanding residual sums to 1 per lane.
        let n = 12usize;
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
        let el = gg_graph::edge_list::EdgeList::from_edges(n, &edges);
        let engine = engine_for(&el);
        let res = fused_ppr(&engine, &[0, 5], 0.2, 1e-12, 200);
        for lane in &res.p {
            let settled: f64 = lane.iter().sum();
            assert!(settled > 0.999, "settled mass {settled}");
            assert!(settled <= 1.0 + 1e-9, "settled mass {settled}");
        }
    }
}
