//! The partition-parallel execution path.
//!
//! [`GraphGrind2`](crate::engine::GraphGrind2) with
//! [`ExecutorKind::Partitioned`](crate::config::ExecutorKind) routes every
//! edge map through this module. The [traversal planner](crate::plan)
//! chooses, per non-empty partition, both the kernel **and the output
//! representation**, then splits each planned partition into
//! **edge-balanced chunks** capped by the resolved
//! [`ChunkCap`](crate::config::ChunkCap) policy
//! ([`Config::chunk_edges`](crate::config::Config::chunk_edges) /
//! `GG_CHUNK`; `Auto` derives `|E_partition| / (k · threads)` per
//! partition), splitting a **mega-hub** destination's in-edge scan into
//! sub-chunks when one in-degree alone exceeds the cap. The chunks execute
//! as one epoch of the persistent pool's deque-based, NUMA-domain-affine
//! work stealing and return typed buffers that reduce and merge in
//! `(partition, chunk, sub-chunk)` order:
//!
//! ```text
//!            frontier F ──────▶ TraversalPlan (gg_core::plan)
//!                │     per-partition |F ∩ R_p| + Σdeg(F ∩ R_p):
//!                │     (kernel, output-repr) per non-empty partition
//!   ┌────────────┼──────────────────────────────┐
//!   ▼            ▼                              ▼
//! ┌────────┐ ┌──────────────────┐ ┌────────┐ ┌──────┐
//! │ P0     │ │ P1 (heavy, dense)│ │ P_k    │ │ P_e  │ (empty: skipped,
//! │sparse/ │ │ CSC offsets split│ │sparse/ │ │  ∅   │  never planned)
//! │ list   │ │ the dst range    │ │ list   │ └──────┘
//! └──┬─────┘ └───┬────┬────┬────┘ └──┬─────┘
//!    │ candidate │    │    │         │  chunking (gg_core::plan):
//!    │ slices    ▼    ▼    ▼         │  cap = resolve_cap(ChunkCap);
//!    ▼        ┌────┐┌────┐┌────┐     ▼  a hub with deg > cap splits
//!  chunk(s)   │c1,0││c1,1││c1,2│  chunk(s)   into per-scan sub-chunks
//!    └──────────┴─────┴──┬──┴────────┘       (< 2·cap edges per chunk)
//!                        ▼
//!     Pool::run_stealing — ONE EPOCH of the persistent crew (parked
//!     workers wake, drain/steal, arrive at the completion latch):
//!     per-worker deques, chunks seeded onto their owning NUMA domain's
//!     workers; idle workers steal same-domain victims first, then cross
//!     domains (WorkCounters: chunks, hub sub-chunks, steals,
//!     cross-domain steals, max/mean chunk edges)
//!                        ▼
//!  typed per-chunk outputs: Vec<VertexId> | BitmapSegment (sub-range)
//!                          | HubPartial (collected active in-edges of
//!                            one slice of a hub's scan, not yet applied)
//!                          | HubReducePartial (per-quantum pre-reduced
//!                            accumulators of one slice, EdgeMapReduce)
//!                        ▼
//!  reduce_hub_partials — sequential replay of each split hub's collected
//!    contributions in ascending (partition, chunk, sub-chunk) = CSC scan
//!    order through the exclusive update path: one writer per
//!    destination, bit-identical to the unsplit scan
//!  reduce_hub_quanta — EdgeMapReduce operators instead merge the
//!    pre-reduced per-quantum accumulators by quantum index and apply one
//!    folded value per non-empty quantum, ascending: O(degree / QUANTUM)
//!    dispatcher work instead of O(degree) replay
//!                        ▼
//!  Frontier::from_partition_outputs — (partition, chunk)-order concat
//!    all sparse → sorted list, O(Σ outputs), no |V|-proportional work
//!    any dense  → bitmap splice into a pooled scratch bitmap (recycled
//!                 through BufferPool, cleared by touched-word list);
//!                 cost recorded in merge_words()
//! ```
//!
//! * **Views** — `Engine::new` materialises one [`PartitionView`] per
//!   partition of the edge-balanced destination [`PartitionSet`]
//!   (Equation 1): the destination range, the in-edge count, and the
//!   owning NUMA domain from the [`PartitionSchedule`]. Partitions with no
//!   edges (including the empty trailing ranges
//!   `PartitionSet::edge_balanced` produces when partitions outnumber
//!   vertices) are excluded from the task list up front, so they never
//!   touch the pool.
//! * **Planning** — [`plan_partitions`](crate::plan::plan_partitions)
//!   classifies the frontier *locally* per partition (Algorithm 2 on
//!   `|F ∩ R_p| + Σ deg_out(F ∩ R_p)` against the partition's own edge
//!   count) and pairs each kernel with an output representation: sparse
//!   kernels emit sorted vertex lists, dense kernels emit range-aligned
//!   [`BitmapSegment`]s (`Config::output_mode` can force either). Kernel
//!   *and* output selections are recorded in
//!   [`KernelCounts`](crate::engine::KernelCounts), including iterations
//!   that mixed kernels or representations.
//! * **Kernels** — both kernels apply updates destination-major in CSC
//!   adjacency order and only to destinations inside the partition's
//!   range, so each destination has exactly one writer (the exclusive
//!   `update` path, no atomics) **and the applied update sequence is
//!   independent of the kernel chosen, the output representation, the
//!   partition count, and the thread count**:
//!   * [`pull_range`] (dense): scan every destination of the range over
//!     the shared whole-graph CSC, early-exiting on `cond`;
//!   * [`pull_candidates`] (sparse): use the partition's pruned-CSR
//!     source index to find the destinations reachable from the frontier,
//!     then pull exactly those — work proportional to the frontier's
//!     footprint in the partition, not the partition size.
//!
//!   The *current* frontier reaches kernels as a borrowed
//!   [`FrontierView`] — a sparse frontier is never densified just for
//!   membership probes (it is materialised once per edge map only when
//!   `|F| ≥ |V| / 64`, where the bitmap costs less than the probes).
//! * **Chunking** — each planned step splits into edge-balanced chunks
//!   ([`plan::chunk_dense_range`](crate::plan::chunk_dense_range) /
//!   [`plan::chunk_candidates`](crate::plan::chunk_candidates)) capped by
//!   [`plan::resolve_cap`](crate::plan::resolve_cap) (fixed, or derived
//!   per partition under `ChunkCap::Auto`): dense kernels split their
//!   destination range at CSC-offset boundaries, sparse kernels slice
//!   their (deterministically discovered) candidate list, and a
//!   **mega-hub** destination whose in-degree alone exceeds the cap splits
//!   into per-scan sub-chunks ([`plan::Chunk::sub`]) — so every chunk
//!   carries fewer than `cap + min(max_degree, cap)` CSC edges and not
//!   even the top hub's degree bounds a chunk. Chunks of one partition own
//!   disjoint destination sub-ranges (a split hub's slices own disjoint
//!   edge sub-ranges and defer their writes, see below), so the
//!   exclusive-writer guarantee survives chunking unchanged. The chunks
//!   execute under [`Pool::run_stealing`]: seeded onto workers of their
//!   owning NUMA domain, stolen same-domain-first — so on a skewed graph
//!   a star-shaped partition fans out over the idle workers instead of
//!   bounding round latency, which `WorkCounters` makes observable
//!   (chunks, hub sub-chunks, steals, cross-domain steals, max/mean chunk
//!   edges).
//! * **Hub-split reduction** — a sub-chunk does not apply the operator:
//!   it *collects* the frontier-active `(source, weight)` contributions of
//!   its slice ([`collect_hub_partial`], emitting
//!   [`PartitionOutputData::Partial`]), and [`reduce_hub_partials`]
//!   replays each split destination's contributions sequentially, in
//!   ascending `(partition, chunk, sub-chunk)` = CSC scan order, through
//!   the exclusive `update` path with the unsplit kernel's `cond`
//!   pre-check and early exit. The applied update sequence is therefore
//!   bit-identical to never having split the hub, for every cap, thread
//!   count and steal schedule.
//! * **Associative pre-reduction** — for operators implementing
//!   [`EdgeMapReduce`] (PR, SpMV, BF, BP), `edge_map_reduce` replaces the
//!   replay with a fold: *every* destination's scan — split or not — is
//!   folded in fixed [`REDUCE_QUANTUM`]-edge runs with boundaries at
//!   absolute multiples of the quantum within the scan
//!   ([`pull_vertex_reduce`]), and one accumulator per non-empty quantum
//!   is applied in ascending quantum order. A hub sub-chunk pre-reduces
//!   the quanta it fully covers locally and ships raw fragments only for
//!   the (at most two) quanta it straddles
//!   ([`collect_hub_reduce_partial`]); [`reduce_hub_quanta`] then merges
//!   by quantum index — so the dispatcher-side cost per sub-chunk is one
//!   apply per quantum instead of one update per edge, and the f64
//!   grouping (hence the result, bit for bit) is a property of the
//!   destination alone, identical across caps, thread counts, partition
//!   counts and steal schedules.
//! * **Hub-split cost model** — whether an over-cap hub splits at all is
//!   the planner's [`HubSplit`](crate::plan::HubSplit) policy: `Fixed`
//!   caps split unconditionally, the `Auto` cap splits only hubs whose
//!   excess over the cap exceeds
//!   [`HUB_SPLIT_OVERHEAD_EDGES`](crate::plan::HUB_SPLIT_OVERHEAD_EDGES),
//!   so balanced graphs keep coarse, overhead-free schedules.
//! * **Deterministic merge** — each chunk task returns its typed
//!   [`PartitionOutput`]; [`Frontier::from_partition_outputs`] concatenates
//!   them in `(partition, chunk)` order, which over disjoint ascending
//!   destination ranges *is* ascending vertex order. The merged frontier
//!   (and every operator value) is therefore bit-identical across
//!   partition counts, chunk sizes, thread counts, steal schedules, kernel
//!   choices and output representations. A round whose chunks all emitted
//!   sparse lists performs **no `O(|V| / 64)` merge work** — the dense
//!   floor PR 2 paid on every round — and `WorkCounters::merge_words()`
//!   counts exactly the rounds that still pay it; rounds that do pay it
//!   recycle one scratch bitmap through the engine's
//!   [`BufferPool`](gg_runtime::buffer::BufferPool) instead of allocating.
//!   Operators whose `update` reads only destination-local state or state
//!   frozen during the edge map (BFS, PR, SPMV, BC) produce bit-identical
//!   results across *all* partitioned configurations; operators that read
//!   concurrently-updated source-side state (CC's label reads) still
//!   converge to the same fixpoint but may take different round counts
//!   under concurrency.

use std::sync::Arc;

use gg_graph::bitmap::{AtomicBitmap, Bitmap, BitmapSegment};
use gg_graph::csc::Csc;
use gg_graph::csr::PrunedCsr;
use gg_graph::lanes::LaneBitmap;
use gg_graph::reorder::EdgeOrder;
use gg_graph::types::{EdgeId, VertexId};
use gg_runtime::buffer::BufferPool;
use gg_runtime::counters::{LocalTally, WorkCounters};
use gg_runtime::pool::Pool;
use gg_runtime::schedule::PartitionSchedule;

use crate::config::Config;
use crate::edge_map::{EdgeMapReduce, EdgeOp, REDUCE_QUANTUM};
use crate::engine::KernelCounts;
use crate::frontier::{
    Frontier, FrontierData, FrontierView, HubPartial, HubReducePartial, PartitionOutput,
    PartitionOutputData,
};
use crate::fused::{
    collect_fused_hub_partial, collect_fused_hub_reduce_partial, pull_vertex_fused,
    pull_vertex_fused_reduce, reduce_fused_hub_partials, reduce_fused_hub_quanta, FusedData,
    FusedFrontier, FusedPartSink, FusedView, MultiSourceOp, MultiSourceReduce, PossibleMasks,
};
use crate::plan::{self, OutputRepr};
use crate::store::GraphStore;

/// Which per-partition kernel a partition selected for one edge map.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PartKernel {
    /// CSR-indexed candidate discovery + CSC-ordered pull of candidates.
    Sparse,
    /// Full CSC-ordered pull of the partition's destination range.
    Dense,
}

/// A materialised per-partition subgraph view: the partition's destination
/// range plus the metadata the executor consults per iteration. The edge
/// storage itself is shared (whole-graph CSC) or owned by the store's
/// partitioned CSR; views add no per-partition edge copies.
#[derive(Clone, Debug)]
pub struct PartitionView {
    /// Partition index in the engine's `PartitionSet`.
    pub index: usize,
    /// Destinations owned by this partition (Equation 1).
    pub dst_range: std::ops::Range<VertexId>,
    /// In-edges homed to this partition.
    pub num_edges: u64,
    /// Simulated NUMA domain owning the partition.
    pub domain: usize,
    /// Destinations in the range with at least one in-edge — the pruned
    /// CSR's distinct-target count, and therefore a frontier-independent
    /// upper bound on the partition's output size. The planner's `Auto`
    /// output rule uses it to emit sparse lists from dense-kernel
    /// partitions whose output is provably small (see
    /// [`plan::output_for`]).
    pub distinct_dsts: u64,
    /// The partition's effective COO edge layout — fixed globally by
    /// [`LayoutPolicy::Fixed`](crate::config::LayoutPolicy) or chosen per
    /// partition by the memsim layout advisor. The dense kernel visits its
    /// destinations in this order (see [`PartitionedExec::visit_orders`]).
    pub layout: EdgeOrder,
}

/// The partition-parallel executor: per-partition views plus the pool
/// submission order (domain-major, empty partitions dropped).
#[derive(Debug)]
pub(crate) struct PartitionedExec {
    views: Vec<PartitionView>,
    /// Partitions with at least one edge, in NUMA-domain-major order.
    edge_order: Vec<usize>,
    /// Partitions with a non-empty vertex range, in NUMA-domain-major
    /// order (vertex maps have work even in edge-free partitions).
    vertex_order: Vec<usize>,
    /// Domain count of the schedule, passed to the work-stealing scheduler
    /// for worker→domain assignment and victim ordering.
    domains: usize,
    /// Lazily memoised dense chunk decompositions, one slot per partition.
    /// A dense kernel's chunking depends only on the CSC offsets, the
    /// partition's destination range, the resolved cap and the hub-split
    /// policy — all fixed for an engine's lifetime — so the `O(|V_p|)`
    /// offset scan in `chunk_by_weight` runs once per partition instead of
    /// once per round (on a 10-iteration PageRank that scan was the whole
    /// wall-clock gap between finite caps and partition-granular plans).
    /// Each slot records the `(cap, policy)` it was computed under and is
    /// bypassed, not invalidated, if a caller ever plans with different
    /// settings.
    dense_plans: Vec<std::sync::OnceLock<DensePlan>>,
    /// Per-partition destination **visit order** for the dense kernel,
    /// derived from the partition's COO layout: the first-appearance order
    /// of destinations in the layout-sorted edge array (zero-in-degree
    /// destinations appended ascending). `None` means ascending — the
    /// natural CSC range scan — which is always the case for
    /// [`EdgeOrder::Destination`]. Permuting the visit order is
    /// bit-identity-safe: each destination's in-edge scan stays
    /// CSC-ordered and self-contained, and the executor already runs
    /// destinations in arbitrary temporal order across chunks under work
    /// stealing (see the determinism contract above).
    visit_orders: Vec<Option<Arc<Vec<VertexId>>>>,
}

/// A partition's dense chunk list plus optional per-chunk destination
/// visit lists (see [`DensePlan::visit`]).
type DenseChunks = (Arc<Vec<plan::Chunk>>, Option<Arc<Vec<Vec<VertexId>>>>);

/// One partition's cached dense chunk decomposition plus the settings it
/// was planned under (see [`PartitionedExec::dense_plans`]).
#[derive(Debug)]
struct DensePlan {
    cap: usize,
    hub_split: plan::HubSplit,
    chunks: Arc<Vec<plan::Chunk>>,
    /// Per-chunk destination visit lists (parallel to `chunks`), present
    /// only when the partition's layout permutes the visit order: the
    /// partition visit order bucketed by non-sub chunk span. Sub-chunk
    /// (split-hub) slots are empty — a hub's scan is span-defined.
    visit: Option<Arc<Vec<Vec<VertexId>>>>,
}

impl PartitionedExec {
    /// Builds the views from the store's edge-balanced destination
    /// partitions and the NUMA schedule.
    pub fn new(store: &GraphStore, schedule: &PartitionSchedule) -> Self {
        let parts = store.edge_parts();
        let in_degrees = store.in_degrees();
        let per_part = parts.edges_per_partition(in_degrees);
        let views: Vec<PartitionView> = (0..parts.num_partitions())
            .map(|p| {
                let dst_range = parts.range(p);
                let distinct_dsts = in_degrees[dst_range.start as usize..dst_range.end as usize]
                    .iter()
                    .filter(|&&d| d > 0)
                    .count() as u64;
                PartitionView {
                    index: p,
                    dst_range,
                    num_edges: per_part[p],
                    domain: schedule.domain_of(p),
                    distinct_dsts,
                    layout: store.coo().part_order(p),
                }
            })
            .collect();
        let edge_order = schedule.order_filtered(|p| views[p].num_edges > 0);
        let vertex_order = schedule.order_filtered(|p| !views[p].dst_range.is_empty());
        let dense_plans = (0..views.len())
            .map(|_| std::sync::OnceLock::new())
            .collect();
        let visit_orders = views
            .iter()
            .map(|view| visit_order_for(store, view))
            .collect();
        PartitionedExec {
            views,
            edge_order,
            vertex_order,
            domains: schedule.domains(),
            dense_plans,
            visit_orders,
        }
    }

    /// The partition's dense chunk decomposition under `(cap, hub_split)`,
    /// memoised on first use: dense chunking is frontier-independent, so
    /// every subsequent round reuses the cached plan. A call with settings
    /// other than the cached ones (a config change mid-engine) plans fresh
    /// without touching the cache.
    fn dense_chunks(
        &self,
        offsets: &[EdgeId],
        partition: usize,
        cap: usize,
        hub_split: plan::HubSplit,
    ) -> DenseChunks {
        let range = self.views[partition].dst_range.clone();
        let cached = self.dense_plans[partition].get_or_init(|| {
            let chunks = plan::chunk_dense_range(offsets, range.clone(), cap, hub_split);
            let visit = self.visit_orders[partition]
                .as_ref()
                .map(|order| Arc::new(bucket_visit_order(&chunks, order)));
            DensePlan {
                cap,
                hub_split,
                chunks: Arc::new(chunks),
                visit,
            }
        });
        if cached.cap == cap && cached.hub_split == hub_split {
            (Arc::clone(&cached.chunks), cached.visit.clone())
        } else {
            let chunks = plan::chunk_dense_range(offsets, range, cap, hub_split);
            let visit = self.visit_orders[partition]
                .as_ref()
                .map(|order| Arc::new(bucket_visit_order(&chunks, order)));
            (Arc::new(chunks), visit)
        }
    }

    /// All per-partition views, indexed by partition.
    pub fn views(&self) -> &[PartitionView] {
        &self.views
    }

    /// One partition-parallel edge map: let the planner pair a kernel with
    /// an output representation per partition, split every planned
    /// partition into edge-balanced chunks, execute the chunks under
    /// NUMA-domain-affine work stealing with each chunk returning its
    /// typed output buffer, and merge the buffers in `(partition, chunk)`
    /// order.
    #[allow(clippy::too_many_arguments)]
    pub fn edge_map<O: EdgeOp>(
        &self,
        store: &GraphStore,
        pool: &Pool,
        config: &Config,
        counters: &WorkCounters,
        kernel_counts: &KernelCounts,
        scratch: &Arc<BufferPool>,
        frontier: &Frontier,
        op: &O,
    ) -> Frontier {
        let n = store.num_vertices();
        if self.edge_order.is_empty() {
            // No partition has edges: nothing to traverse, pool untouched.
            return Frontier::empty(n);
        }
        let prep = self.prepare(store, pool, config, counters, kernel_counts, frontier);
        let current = match &prep.densified {
            Some(bitmap) => FrontierView::Dense(bitmap),
            None => frontier.view(),
        };
        let csc = store.csc();
        let steps = &prep.traversal.steps;
        let (step_work, tasks) = (&prep.step_work, &prep.tasks);

        let (outputs, tally) = pool.run_stealing(self.domains, &prep.task_domains, |t| {
            let (k, ci) = tasks[t];
            let step = steps[k];
            let mut tally = LocalTally::new(counters);
            match &step_work[k] {
                StepChunks::Dense { chunks, visit } => {
                    let chunk = &chunks[ci];
                    if let Some(sub) = &chunk.sub {
                        let v = chunk.span.start as VertexId;
                        return collect_hub_partial(csc, current, op, v, sub, &mut tally);
                    }
                    let span = &chunk.span;
                    let range = span.start as VertexId..span.end as VertexId;
                    let mut sink = PartSink::new(step.output, range.clone());
                    match visit {
                        // Layout-derived visit order: same destinations,
                        // same per-destination CSC scans, permuted for
                        // locality (see [`visit_order_for`]).
                        Some(visit) => {
                            for &v in &visit[ci] {
                                pull_vertex(csc, current, op, v, &mut sink, &mut tally);
                            }
                        }
                        None => pull_range(csc, current, op, range, &mut sink, &mut tally),
                    }
                    sink.into_output()
                }
                StepChunks::Sparse { candidates, chunks } => {
                    let chunk = &chunks[ci];
                    if let Some(sub) = &chunk.sub {
                        let v = candidates[chunk.span.start];
                        return collect_hub_partial(csc, current, op, v, sub, &mut tally);
                    }
                    let slice = &candidates[chunk.span.clone()];
                    // A candidate slice is sorted, so it spans exactly
                    // [first, last]: disjoint from its sibling chunks.
                    let range = slice[0]..slice[slice.len() - 1] + 1;
                    let mut sink = PartSink::new(step.output, range);
                    for &v in slice {
                        pull_vertex(csc, current, op, v, &mut sink, &mut tally);
                    }
                    sink.into_output()
                }
            }
        });
        counters.add_steals(tally.steals, tally.cross_domain_steals);

        // Mega-hub partial accumulators reduce sequentially in ascending
        // (partition, chunk, sub-chunk) order before the merge, so a split
        // destination keeps one writer and the CSC update order.
        let outputs = reduce_hub_partials(outputs, op);

        Frontier::from_partition_outputs(outputs, n, store.out_degrees(), counters, Some(scratch))
    }

    /// One partition-parallel edge map for an associative
    /// [`EdgeMapReduce`] operator. Identical planning, chunking and
    /// scheduling to [`edge_map`](Self::edge_map), but every destination's
    /// in-edge scan is folded per fixed [`REDUCE_QUANTUM`]-edge run
    /// ([`pull_vertex_reduce`]): hub sub-chunks pre-reduce the quanta they
    /// fully cover into one accumulator each ([`collect_hub_reduce_partial`])
    /// so the dispatcher-side reduction ([`reduce_hub_quanta`]) costs one
    /// apply per quantum instead of replaying every edge — while the f64
    /// grouping, and therefore the result, stays bit-identical across
    /// caps, thread counts, partition counts and steal schedules.
    #[allow(clippy::too_many_arguments)]
    pub fn edge_map_reduce<O: EdgeMapReduce>(
        &self,
        store: &GraphStore,
        pool: &Pool,
        config: &Config,
        counters: &WorkCounters,
        kernel_counts: &KernelCounts,
        scratch: &Arc<BufferPool>,
        frontier: &Frontier,
        op: &O,
    ) -> Frontier {
        let n = store.num_vertices();
        if self.edge_order.is_empty() {
            return Frontier::empty(n);
        }
        let prep = self.prepare(store, pool, config, counters, kernel_counts, frontier);
        let current = match &prep.densified {
            Some(bitmap) => FrontierView::Dense(bitmap),
            None => frontier.view(),
        };
        let csc = store.csc();
        let steps = &prep.traversal.steps;
        let (step_work, tasks) = (&prep.step_work, &prep.tasks);

        let (outputs, tally) = pool.run_stealing(self.domains, &prep.task_domains, |t| {
            let (k, ci) = tasks[t];
            let step = steps[k];
            let mut tally = LocalTally::new(counters);
            match &step_work[k] {
                StepChunks::Dense { chunks, visit } => {
                    let chunk = &chunks[ci];
                    if let Some(sub) = &chunk.sub {
                        let v = chunk.span.start as VertexId;
                        return collect_hub_reduce_partial(csc, current, op, v, sub, &mut tally);
                    }
                    let span = &chunk.span;
                    let range = span.start as VertexId..span.end as VertexId;
                    let mut sink = PartSink::new(step.output, range.clone());
                    match visit {
                        // Visit-order permutation is transparent to the
                        // reduce contract: quantum grouping is fixed by
                        // the destination alone.
                        Some(visit) => {
                            for &v in &visit[ci] {
                                pull_vertex_reduce(csc, current, op, v, &mut sink, &mut tally);
                            }
                        }
                        None => {
                            for v in range {
                                pull_vertex_reduce(csc, current, op, v, &mut sink, &mut tally);
                            }
                        }
                    }
                    sink.into_output()
                }
                StepChunks::Sparse { candidates, chunks } => {
                    let chunk = &chunks[ci];
                    if let Some(sub) = &chunk.sub {
                        let v = candidates[chunk.span.start];
                        return collect_hub_reduce_partial(csc, current, op, v, sub, &mut tally);
                    }
                    let slice = &candidates[chunk.span.clone()];
                    let range = slice[0]..slice[slice.len() - 1] + 1;
                    let mut sink = PartSink::new(step.output, range);
                    for &v in slice {
                        pull_vertex_reduce(csc, current, op, v, &mut sink, &mut tally);
                    }
                    sink.into_output()
                }
            }
        });
        counters.add_steals(tally.steals, tally.cross_domain_steals);

        // Merge pre-reduced per-quantum accumulators by quantum index and
        // apply one value per non-empty quantum, ascending — the reduce
        // path's cheap replacement for the sequential edge replay.
        let outputs = reduce_hub_quanta(outputs, op);

        Frontier::from_partition_outputs(outputs, n, store.out_degrees(), counters, Some(scratch))
    }

    /// One partition-parallel **fused** edge map: advance all K lanes of
    /// `fused` in a single pass. Planning, densification, chunking, hub
    /// splitting and work stealing run on the **union frontier** through
    /// exactly the scalar [`prepare`](Self::prepare) path (a partition is
    /// dense when the union frontier is dense there); only the kernels and
    /// the typed output buffers are lane-aware. `union_frontier` must be
    /// `fused`'s union (the caller owns it to record plans against it).
    #[allow(clippy::too_many_arguments)]
    pub fn fused_edge_map<O: MultiSourceOp>(
        &self,
        store: &GraphStore,
        pool: &Pool,
        config: &Config,
        counters: &WorkCounters,
        kernel_counts: &KernelCounts,
        union_frontier: &Frontier,
        fused: &FusedFrontier,
        op: &O,
    ) -> FusedFrontier {
        let n = store.num_vertices();
        let k = fused.num_lanes();
        if self.edge_order.is_empty() {
            return FusedFrontier::empty(n, k);
        }
        let prep = self.prepare(store, pool, config, counters, kernel_counts, union_frontier);
        // Densify the lane state in lockstep with the union view: when
        // the scalar path swaps binary-search probes for a bitmap, the
        // lane lookups swap to indexed words for the same reason.
        let dense_lanes: Option<LaneBitmap> = match (prep.densified.as_ref(), fused.data()) {
            (Some(_), FusedData::Sparse { .. }) => Some(fused.to_lane_bitmap()),
            _ => None,
        };
        let lanes = match &dense_lanes {
            Some(lb) => FusedView::Dense(lb),
            None => fused.view(),
        };
        // Deliverable-lane prefilter: which lanes one more pull of each
        // destination could activate this round. Frontier-derived, so the
        // skip decisions are identical under every schedule.
        let possible = PossibleMasks::build_partitioned(
            store.partitioned_csr().expect("partitioned store"),
            fused,
            pool,
            n,
        );
        let possible = &possible;
        let csc = store.csc();
        let steps = &prep.traversal.steps;
        let (step_work, tasks) = (&prep.step_work, &prep.tasks);

        let (outputs, tally) = pool.run_stealing(self.domains, &prep.task_domains, |t| {
            let (s, ci) = tasks[t];
            let step = steps[s];
            let mut tally = LocalTally::new(counters);
            match &step_work[s] {
                // Fused kernels keep the ascending range scan: the K-lane
                // sinks stream range-ordered lane words, and the fused
                // paths are not covered by the layout advisor's model.
                StepChunks::Dense { chunks, .. } => {
                    let chunk = &chunks[ci];
                    if let Some(sub) = &chunk.sub {
                        let v = chunk.span.start as VertexId;
                        return collect_fused_hub_partial(
                            csc,
                            lanes,
                            op,
                            v,
                            possible.get(v),
                            sub,
                            &mut tally,
                        );
                    }
                    let range = chunk.span.start as VertexId..chunk.span.end as VertexId;
                    let mut sink = FusedPartSink::new(step.output, range.clone());
                    for v in range {
                        pull_vertex_fused(
                            csc,
                            lanes,
                            op,
                            v,
                            possible.get(v),
                            &mut sink,
                            &mut tally,
                        );
                    }
                    sink.into_output()
                }
                StepChunks::Sparse { candidates, chunks } => {
                    let chunk = &chunks[ci];
                    if let Some(sub) = &chunk.sub {
                        let v = candidates[chunk.span.start];
                        return collect_fused_hub_partial(
                            csc,
                            lanes,
                            op,
                            v,
                            possible.get(v),
                            sub,
                            &mut tally,
                        );
                    }
                    let slice = &candidates[chunk.span.clone()];
                    let range = slice[0]..slice[slice.len() - 1] + 1;
                    let mut sink = FusedPartSink::new(step.output, range);
                    for &v in slice {
                        pull_vertex_fused(
                            csc,
                            lanes,
                            op,
                            v,
                            possible.get(v),
                            &mut sink,
                            &mut tally,
                        );
                    }
                    sink.into_output()
                }
            }
        });
        counters.add_steals(tally.steals, tally.cross_domain_steals);

        let outputs = reduce_fused_hub_partials(outputs, op);
        FusedFrontier::from_outputs(outputs, n, k, counters)
    }

    /// The fused associative edge map ([`MultiSourceReduce`]): identical
    /// planning and scheduling to [`fused_edge_map`](Self::fused_edge_map),
    /// with destination scans folded per fixed [`REDUCE_QUANTUM`]-edge run
    /// ([`pull_vertex_fused_reduce`]) so the per-lane f64 grouping is
    /// fixed by the destination alone — bit-identical across caps, thread
    /// counts, partition counts and steal schedules.
    #[allow(clippy::too_many_arguments)]
    pub fn fused_edge_map_reduce<O: MultiSourceReduce>(
        &self,
        store: &GraphStore,
        pool: &Pool,
        config: &Config,
        counters: &WorkCounters,
        kernel_counts: &KernelCounts,
        union_frontier: &Frontier,
        fused: &FusedFrontier,
        op: &O,
    ) -> FusedFrontier {
        let n = store.num_vertices();
        let k = fused.num_lanes();
        if self.edge_order.is_empty() {
            return FusedFrontier::empty(n, k);
        }
        let prep = self.prepare(store, pool, config, counters, kernel_counts, union_frontier);
        let dense_lanes: Option<LaneBitmap> = match (prep.densified.as_ref(), fused.data()) {
            (Some(_), FusedData::Sparse { .. }) => Some(fused.to_lane_bitmap()),
            _ => None,
        };
        let lanes = match &dense_lanes {
            Some(lb) => FusedView::Dense(lb),
            None => fused.view(),
        };
        // Reduce destinations skip only on a zero deliverable mask (no
        // active in-neighbour at all) — scans are never truncated, so the
        // per-lane f64 grouping is untouched by the prefilter.
        let possible = PossibleMasks::build_partitioned(
            store.partitioned_csr().expect("partitioned store"),
            fused,
            pool,
            n,
        );
        let possible = &possible;
        let csc = store.csc();
        let steps = &prep.traversal.steps;
        let (step_work, tasks) = (&prep.step_work, &prep.tasks);

        let (outputs, tally) = pool.run_stealing(self.domains, &prep.task_domains, |t| {
            let (s, ci) = tasks[t];
            let step = steps[s];
            let mut tally = LocalTally::new(counters);
            match &step_work[s] {
                // Ascending scan, as in `fused_edge_map` (see the note
                // there on why fused paths skip the visit permutation).
                StepChunks::Dense { chunks, .. } => {
                    let chunk = &chunks[ci];
                    if let Some(sub) = &chunk.sub {
                        let v = chunk.span.start as VertexId;
                        return collect_fused_hub_reduce_partial(
                            csc,
                            lanes,
                            op,
                            v,
                            possible.get(v),
                            sub,
                            &mut tally,
                        );
                    }
                    let range = chunk.span.start as VertexId..chunk.span.end as VertexId;
                    let mut sink = FusedPartSink::new(step.output, range.clone());
                    for v in range {
                        pull_vertex_fused_reduce(
                            csc,
                            lanes,
                            op,
                            v,
                            possible.get(v),
                            &mut sink,
                            &mut tally,
                        );
                    }
                    sink.into_output()
                }
                StepChunks::Sparse { candidates, chunks } => {
                    let chunk = &chunks[ci];
                    if let Some(sub) = &chunk.sub {
                        let v = candidates[chunk.span.start];
                        return collect_fused_hub_reduce_partial(
                            csc,
                            lanes,
                            op,
                            v,
                            possible.get(v),
                            sub,
                            &mut tally,
                        );
                    }
                    let slice = &candidates[chunk.span.clone()];
                    let range = slice[0]..slice[slice.len() - 1] + 1;
                    let mut sink = FusedPartSink::new(step.output, range);
                    for &v in slice {
                        pull_vertex_fused_reduce(
                            csc,
                            lanes,
                            op,
                            v,
                            possible.get(v),
                            &mut sink,
                            &mut tally,
                        );
                    }
                    sink.into_output()
                }
            }
        });
        counters.add_steals(tally.steals, tally.cross_domain_steals);

        let outputs = reduce_fused_hub_quanta(outputs, op);
        FusedFrontier::from_outputs(outputs, n, k, counters)
    }

    /// Recomputes the per-partition `(kernel, output)` plan that
    /// [`prepare`](Self::prepare) derives for `frontier` — the same
    /// `plan_partitions` call on the same inputs, evaluated *before* any
    /// densification, so the result is exactly what an edge map on this
    /// frontier executes. Used by the engine's round recorder: the planner
    /// is deterministic and pool-free, so recording can recompute the plan
    /// instead of threading it out of the execution path.
    pub(crate) fn round_plan(
        &self,
        store: &GraphStore,
        config: &Config,
        frontier: &Frontier,
    ) -> plan::TraversalPlan {
        plan::plan_partitions(
            frontier,
            &self.views,
            &self.edge_order,
            store.out_degrees(),
            &config.thresholds,
            config.output_mode,
        )
    }

    /// The planning + chunking skeleton shared by
    /// [`edge_map`](Self::edge_map) and
    /// [`edge_map_reduce`](Self::edge_map_reduce): plan `(kernel, output)`
    /// per partition, densify the frontier view when probing would cost
    /// more than one bitmap, split every planned step into edge-balanced
    /// chunks under the resolved cap and the
    /// [`HubSplit`](crate::plan::HubSplit) policy, and flatten the chunks
    /// into the deterministic task list whose index is the merge key.
    fn prepare(
        &self,
        store: &GraphStore,
        pool: &Pool,
        config: &Config,
        counters: &WorkCounters,
        kernel_counts: &KernelCounts,
        frontier: &Frontier,
    ) -> PreparedEdgeMap {
        let n = store.num_vertices();

        // The plan: (kernel, output-repr) per partition — cheap,
        // deterministic, pool-free.
        let traversal = plan::plan_partitions(
            frontier,
            &self.views,
            &self.edge_order,
            store.out_degrees(),
            &config.thresholds,
            config.output_mode,
        );
        let (ks, kd) = traversal.kernel_tally();
        let (os, od) = traversal.output_tally();
        kernel_counts.record_partitioned(ks, kd);
        kernel_counts.record_outputs(os, od);

        // Input side: kernels probe the frontier through a borrowed view.
        // A sparse list is densified once per edge map only when it is
        // large enough that the O(|V| / 64) bitmap costs less than the
        // binary-search probes it replaces.
        let densified: Option<Bitmap> = match frontier.data() {
            FrontierData::Sparse(list) if n >= 64 && list.len() >= n / 64 => {
                Some(frontier.to_bitmap())
            }
            _ => None,
        };
        let current = match &densified {
            Some(bitmap) => FrontierView::Dense(bitmap),
            None => frontier.view(),
        };

        let pcsr = store
            .partitioned_csr()
            .expect("partitioned executor requires the partitioned CSR layout");
        let csc = store.csc();

        // Chunking: split each planned step into edge-balanced chunks —
        // CSC-offset-balanced destination sub-ranges for dense kernels,
        // candidate-list slices for sparse kernels, and per-scan
        // sub-chunks for mega-hub destinations when the hub-split policy
        // says splitting pays (`Fixed` caps always split; `Auto` applies
        // the cost model). The cap itself is resolved per partition
        // (`ChunkCap::Auto` derives it from `|E_partition|` and the thread
        // count). Candidate discovery is a deterministic function of the
        // frontier and the pruned CSR, so fanning it out per step (keyed
        // by index) keeps the plan deterministic.
        let hub_split = plan::HubSplit::for_cap(config.chunk_edges);
        let steps = &traversal.steps;
        let step_work: Vec<StepChunks> = pool.map_indices(steps.len(), |k| {
            let step = steps[k];
            let view = &self.views[step.partition];
            let cap = plan::resolve_cap(config.chunk_edges, view.num_edges, pool.threads());
            match step.kernel {
                PartKernel::Dense => {
                    let (chunks, visit) =
                        self.dense_chunks(csc.offsets(), step.partition, cap, hub_split);
                    StepChunks::Dense { chunks, visit }
                }
                PartKernel::Sparse => {
                    let candidates = discover_candidates(pcsr.part(step.partition), current);
                    let chunks = plan::chunk_candidates(&candidates, csc.offsets(), cap, hub_split);
                    StepChunks::Sparse { candidates, chunks }
                }
            }
        });

        // Flatten to the deterministic task list: steps in submission
        // order, chunks in range order within each step. The task index is
        // the merge key, so scheduling can never reorder results.
        let mut tasks: Vec<(usize, usize)> = Vec::new();
        let mut task_domains: Vec<usize> = Vec::new();
        let (mut edge_sum, mut edge_max) = (0u64, 0u64);
        let mut hub_subchunks = 0u64;
        for (k, work) in step_work.iter().enumerate() {
            let domain = self.views[steps[k].partition].domain;
            for (ci, chunk) in work.chunks().iter().enumerate() {
                tasks.push((k, ci));
                task_domains.push(domain);
                edge_sum += chunk.edges;
                edge_max = edge_max.max(chunk.edges);
                hub_subchunks += chunk.sub.is_some() as u64;
            }
        }
        counters.add_chunks(tasks.len() as u64, edge_sum, edge_max);
        counters.add_hub_subchunks(hub_subchunks);

        PreparedEdgeMap {
            traversal,
            densified,
            step_work,
            tasks,
            task_domains,
        }
    }

    /// Partition-parallel `vertex_map_all`: every vertex range fans out as
    /// one pool task, in NUMA-domain-major order.
    pub fn vertex_map_all<F: Fn(VertexId) + Sync>(&self, pool: &Pool, f: F) {
        pool.for_each_in_order(&self.vertex_order, |p| {
            for v in self.views[p].dst_range.clone() {
                f(v);
            }
        });
    }

    /// Partition-parallel `vertex_map`: each partition visits the active
    /// vertices inside its range, in ascending order.
    pub fn vertex_map<F: Fn(VertexId) + Sync>(&self, pool: &Pool, frontier: &Frontier, f: F) {
        if frontier.is_empty() {
            return;
        }
        match frontier.data() {
            FrontierData::Sparse(list) => {
                pool.for_each_in_order(&self.vertex_order, |p| {
                    let range = &self.views[p].dst_range;
                    let lo = list.partition_point(|&v| v < range.start);
                    let hi = list.partition_point(|&v| v < range.end);
                    for &v in &list[lo..hi] {
                        f(v);
                    }
                });
            }
            FrontierData::Dense(bitmap) => {
                pool.for_each_in_order(&self.vertex_order, |p| {
                    let range = self.views[p].dst_range.clone();
                    bitmap.for_each_one_in_range(range.start as usize..range.end as usize, |v| {
                        f(v as VertexId)
                    });
                });
            }
        }
    }
}

/// Derives one partition's dense-kernel destination **visit order** from
/// its COO layout: destinations in first-appearance order of the
/// layout-sorted edge array (so a Hilbert partition's pull scan follows
/// the same space-filling curve its COO scan does), with zero-in-degree
/// destinations appended ascending so every range destination is visited
/// exactly once. Returns `None` when the derived order is plain ascending
/// — always the case for [`EdgeOrder::Destination`] — so the common path
/// keeps the allocation-free range scan.
fn visit_order_for(store: &GraphStore, view: &PartitionView) -> Option<Arc<Vec<VertexId>>> {
    let range = &view.dst_range;
    if view.layout == EdgeOrder::Destination || range.is_empty() || view.num_edges == 0 {
        return None;
    }
    let len = range.len();
    let mut seen = vec![false; len];
    let mut order: Vec<VertexId> = Vec::with_capacity(len);
    for &v in store.coo().part_dsts(view.index) {
        let i = (v - range.start) as usize;
        if !seen[i] {
            seen[i] = true;
            order.push(v);
        }
    }
    for (i, taken) in seen.iter().enumerate() {
        if !taken {
            order.push(range.start + i as VertexId);
        }
    }
    debug_assert_eq!(order.len(), len);
    if order.windows(2).all(|w| w[0] < w[1]) {
        None
    } else {
        Some(Arc::new(order))
    }
}

/// Buckets one partition's visit order by the non-sub chunks of its dense
/// decomposition: each chunk's slot receives exactly the destinations of
/// its span, in partition visit order. Split-hub destinations are skipped
/// (a hub's scan is defined by its sub-chunk spans, not a visit list), so
/// sub-chunk slots stay empty.
fn bucket_visit_order(chunks: &[plan::Chunk], order: &[VertexId]) -> Vec<Vec<VertexId>> {
    let spans: Vec<(VertexId, VertexId, usize)> = chunks
        .iter()
        .enumerate()
        .filter(|(_, c)| c.sub.is_none())
        .map(|(i, c)| (c.span.start as VertexId, c.span.end as VertexId, i))
        .collect();
    let mut visit: Vec<Vec<VertexId>> = vec![Vec::new(); chunks.len()];
    for &v in order {
        let slot = spans.binary_search_by(|&(s, e, _)| {
            if v < s {
                std::cmp::Ordering::Greater
            } else if v >= e {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        });
        if let Ok(k) = slot {
            visit[spans[k].2].push(v);
        }
    }
    debug_assert!(chunks
        .iter()
        .zip(&visit)
        .all(|(c, l)| c.sub.is_some() || l.len() == c.span.len()));
    visit
}

/// The shared output of [`PartitionedExec::prepare`]: the plan, the
/// (possibly densified) frontier view's backing bitmap, the per-step chunk
/// decompositions, and the flattened deterministic task list.
struct PreparedEdgeMap {
    traversal: plan::TraversalPlan,
    /// Keeps the densified frontier bitmap alive for the task phase; the
    /// caller rebuilds the borrowed [`FrontierView`] from it.
    densified: Option<Bitmap>,
    step_work: Vec<StepChunks>,
    /// `(step, chunk)` pairs in submission order — the task index is the
    /// merge key.
    tasks: Vec<(usize, usize)>,
    task_domains: Vec<usize>,
}

/// One planned step's chunk decomposition: the dense kernel's sub-ranges,
/// or the sparse kernel's discovered candidate list plus its slices.
#[derive(Debug)]
enum StepChunks {
    /// Dense kernel: CSC-offset-balanced destination sub-ranges, shared
    /// with the executor's per-partition memo (see
    /// [`PartitionedExec::dense_chunks`]), plus the layout-derived
    /// per-chunk visit lists when the partition's order is not ascending.
    Dense {
        chunks: Arc<Vec<plan::Chunk>>,
        visit: Option<Arc<Vec<Vec<VertexId>>>>,
    },
    /// Sparse kernel: the partition's sorted candidate list and the
    /// edge-balanced index slices over it.
    Sparse {
        candidates: Vec<VertexId>,
        chunks: Vec<plan::Chunk>,
    },
}

impl StepChunks {
    fn chunks(&self) -> &[plan::Chunk] {
        match self {
            StepChunks::Dense { chunks, .. } => chunks,
            StepChunks::Sparse { chunks, .. } => chunks,
        }
    }
}

/// Where a partition kernel records activated destinations. Kernels call
/// [`activate`](Self::activate) at most once per destination (pull-based
/// traversal visits each destination once), so sinks need no deduplication.
pub trait FrontierSink {
    /// Records that destination `v` joins the next frontier.
    fn activate(&mut self, v: VertexId);
}

/// The typed per-partition output sink the planner selects: a sorted
/// vertex list or a range-aligned dense bitmap segment. Owned by exactly
/// one pool task — plain stores, no atomics.
#[derive(Debug)]
pub enum PartSink {
    /// Sorted list. Kernels may push in any visit order (the dense kernel
    /// follows its partition's layout-derived permutation);
    /// [`into_output`](Self::into_output) sorts, which is `O(k)` for the
    /// already-ascending sparse-kernel and range-scan pushes.
    Sparse {
        /// The emitting partition's destination range.
        range: std::ops::Range<VertexId>,
        /// Activated destinations, in visit order until finished.
        list: Vec<VertexId>,
    },
    /// Range-aligned dense segment.
    Dense {
        /// The segment, covering exactly the partition's range.
        segment: BitmapSegment,
    },
}

impl PartSink {
    /// An empty sink of the planned representation over `range`.
    pub fn new(repr: OutputRepr, range: std::ops::Range<VertexId>) -> Self {
        match repr {
            OutputRepr::Sparse => PartSink::Sparse {
                range,
                list: Vec::new(),
            },
            OutputRepr::Dense => PartSink::Dense {
                segment: BitmapSegment::new(range.start as usize..range.end as usize),
            },
        }
    }

    /// Finishes the task, yielding the typed output buffer for the merge.
    pub fn into_output(self) -> PartitionOutput {
        match self {
            PartSink::Sparse { range, mut list } => {
                // The merge contract wants ascending lists; restore it
                // here so a permuted dense visit order stays invisible
                // downstream (pattern-defeating quicksort makes this a
                // single detection pass when the pushes were ascending).
                list.sort_unstable();
                PartitionOutput {
                    range,
                    data: PartitionOutputData::Sparse(list),
                }
            }
            PartSink::Dense { segment } => {
                let r = segment.range();
                PartitionOutput {
                    range: r.start as VertexId..r.end as VertexId,
                    data: PartitionOutputData::Dense(segment),
                }
            }
        }
    }
}

impl FrontierSink for PartSink {
    #[inline]
    fn activate(&mut self, v: VertexId) {
        match self {
            PartSink::Sparse { list, range } => {
                debug_assert!(range.contains(&v));
                list.push(v);
            }
            PartSink::Dense { segment } => segment.set(v as usize),
        }
    }
}

/// Adapter writing activations into a shared [`AtomicBitmap`] — the shape
/// the pre-planner executor used, kept for differential tests and ad-hoc
/// kernel harnesses.
pub struct AtomicSink<'a>(pub &'a AtomicBitmap);

impl FrontierSink for AtomicSink<'_> {
    #[inline]
    fn activate(&mut self, v: VertexId) {
        self.0.set(v as usize);
    }
}

/// Applies the in-edges of destination `v` (CSC adjacency order) for every
/// active source, honouring `cond` pre-check and early exit. This inner
/// loop is shared by both partition kernels, which is what makes kernel
/// selection invisible in the computed values. The destination is
/// activated at most once, after its in-edge scan.
#[inline]
fn pull_vertex<O: EdgeOp, S: FrontierSink>(
    csc: &Csc,
    current: FrontierView<'_>,
    op: &O,
    v: VertexId,
    sink: &mut S,
    tally: &mut LocalTally,
) {
    tally.vertex();
    if !op.cond(v) {
        return;
    }
    let mut activated = false;
    for e in csc.edge_range(v) {
        tally.edge();
        let u = csc.sources()[e];
        if current.contains(u) {
            if op.update(u, v, csc.weight_at(e)) {
                activated = true;
            }
            if !op.cond(v) {
                break;
            }
        }
    }
    if activated {
        sink.activate(v);
    }
}

/// Dense partition kernel: pull every destination of `range` over the
/// shared whole-graph CSC. Exclusive updates — the caller guarantees one
/// task per destination range.
pub fn pull_range<O: EdgeOp, S: FrontierSink>(
    csc: &Csc,
    current: FrontierView<'_>,
    op: &O,
    range: std::ops::Range<VertexId>,
    sink: &mut S,
    tally: &mut LocalTally,
) {
    for v in range {
        pull_vertex(csc, current, op, v, sink, tally);
    }
}

/// The reduce-path analogue of [`pull_vertex`]: fold destination `v`'s
/// frontier-active in-edge contributions in fixed [`REDUCE_QUANTUM`]-edge
/// runs (boundaries at absolute multiples of the quantum within the scan)
/// and apply one accumulator per non-empty quantum, in ascending quantum
/// order, through the exclusive [`EdgeMapReduce::apply`] path.
///
/// The per-quantum grouping — not a single whole-scan fold — is the
/// bit-identity contract with the split path: a hub sub-chunk folds
/// exactly the same quanta ([`collect_hub_reduce_partial`]), so the f64
/// operation sequence per destination is the same whether the scan ran
/// whole, split at any cap, or on any thread. `cond` is checked once per
/// destination (reduce-capable operators are frontier-driven; none uses a
/// mid-scan early exit).
#[inline]
fn pull_vertex_reduce<O: EdgeMapReduce, S: FrontierSink>(
    csc: &Csc,
    current: FrontierView<'_>,
    op: &O,
    v: VertexId,
    sink: &mut S,
    tally: &mut LocalTally,
) {
    tally.vertex();
    if !op.cond(v) {
        return;
    }
    let base = csc.offsets()[v as usize];
    let deg = csc.offsets()[v as usize + 1] - base;
    let mut activated = false;
    let mut lo = 0usize;
    while lo < deg {
        let hi = (lo + REDUCE_QUANTUM).min(deg);
        let mut acc = op.identity();
        let mut any = false;
        for r in lo..hi {
            tally.edge();
            let e = base + r;
            let u = csc.sources()[e];
            if current.contains(u) {
                acc = op.accumulate(acc, u, csc.weight_at(e));
                any = true;
            }
        }
        // Empty quanta are never applied — activation means at least one
        // active in-edge, exactly as on the exclusive-update path.
        if any && op.apply(v, acc) {
            activated = true;
        }
        lo = hi;
    }
    if activated {
        sink.activate(v);
    }
}

/// Executes one mega-hub sub-chunk of the reduce path: fold the quanta of
/// destination `v`'s scan that the slice `sub` fully covers into one
/// accumulator each, and collect raw `(quantum, source, weight)` fragments
/// for the (at most two) quanta the slice only straddles — the reducer
/// re-folds those whole quanta edge-wise so the f64 grouping matches an
/// unsplit scan ([`pull_vertex_reduce`]) exactly. Applying is deferred to
/// [`reduce_hub_quanta`], so the destination keeps a single writer.
fn collect_hub_reduce_partial<O: EdgeMapReduce>(
    csc: &Csc,
    current: FrontierView<'_>,
    op: &O,
    v: VertexId,
    sub: &plan::SubSpan,
    tally: &mut LocalTally,
) -> PartitionOutput {
    // Count the destination visit once, on its first slice.
    if sub.lo == 0 {
        tally.vertex();
    }
    // Pre-size for the slice: one folded entry per covered quantum, and
    // at most two straddled quanta's worth of raw fragments — growing
    // these from empty re-allocates several times per sub-chunk, which
    // is pure overhead on the hub-heavy dense rounds.
    let span = (sub.hi - sub.lo) as usize;
    let mut folded: Vec<(u64, f64)> = Vec::with_capacity(span / REDUCE_QUANTUM + 1);
    let mut fragments: Vec<(u64, VertexId, f32)> = Vec::with_capacity(2 * (REDUCE_QUANTUM - 1));
    if op.cond(v) {
        let base = csc.offsets()[v as usize];
        let deg = csc.offsets()[v as usize + 1] - base;
        let (lo, hi) = (sub.lo as usize, sub.hi as usize);
        let mut r = lo;
        while r < hi {
            let q = r / REDUCE_QUANTUM;
            let q_lo = q * REDUCE_QUANTUM;
            // The quantum's absolute end: the scan's final quantum is
            // truncated at the in-degree.
            let q_hi = (q_lo + REDUCE_QUANTUM).min(deg);
            let seg_hi = q_hi.min(hi);
            if r == q_lo && q_hi <= hi {
                // Fully covered quantum: fold it locally.
                let mut acc = op.identity();
                let mut any = false;
                for s in r..seg_hi {
                    tally.edge();
                    let e = base + s;
                    let u = csc.sources()[e];
                    if current.contains(u) {
                        acc = op.accumulate(acc, u, csc.weight_at(e));
                        any = true;
                    }
                }
                if any {
                    folded.push((q as u64, acc));
                }
            } else {
                // Straddled quantum: ship the active edges raw.
                for s in r..seg_hi {
                    tally.edge();
                    let e = base + s;
                    let u = csc.sources()[e];
                    if current.contains(u) {
                        fragments.push((q as u64, u, csc.weight_at(e)));
                    }
                }
            }
            r = seg_hi;
        }
    }
    PartitionOutput {
        range: v..v + 1,
        data: PartitionOutputData::ReducePartial(HubReducePartial { folded, fragments }),
    }
}

/// Reduces pre-reduced mega-hub accumulators into resolved outputs: for
/// each split destination, merge its sub-chunks' per-quantum entries by
/// quantum index (ascending — sub-chunks arrive in ascending slice order,
/// so the concatenated entries already are), re-fold fragment runs of
/// straddled quanta edge-wise from the identity, and apply one value per
/// non-empty quantum through the exclusive [`EdgeMapReduce::apply`] path.
/// Per quantum either exactly one sub-chunk folded it or ≥1 sub-chunks
/// shipped fragments — never both, since sub-chunks tile the scan
/// disjointly. Dispatcher work is `O(degree / REDUCE_QUANTUM)` applies
/// plus the straddled fragments, not the `O(degree)` replay of
/// [`reduce_hub_partials`]. Non-partial outputs pass through untouched.
pub fn reduce_hub_quanta<O: EdgeMapReduce>(
    outputs: Vec<PartitionOutput>,
    op: &O,
) -> Vec<PartitionOutput> {
    if !outputs.iter().any(|o| o.is_partial()) {
        return outputs;
    }
    let mut reduced = Vec::with_capacity(outputs.len());
    let mut it = outputs.into_iter().peekable();
    while let Some(o) = it.next() {
        let v = o.range.start;
        match o.data {
            PartitionOutputData::ReducePartial(first) => {
                let mut parts = vec![first];
                while let Some(next) = it.peek() {
                    if next.range.start == v && next.is_partial() {
                        if let PartitionOutputData::ReducePartial(p) = it.next().unwrap().data {
                            parts.push(p);
                        }
                    } else {
                        break;
                    }
                }
                let mut activated = false;
                if op.cond(v) {
                    // Walk the merged per-quantum entries in ascending
                    // quantum order. Folded values apply directly; a
                    // fragment run re-folds its whole quantum edge-wise.
                    let mut frag_acc: Option<(u64, f64)> = None;
                    let flush = |pending: &mut Option<(u64, f64)>, activated: &mut bool| {
                        if let Some((_, acc)) = pending.take() {
                            if op.apply(v, acc) {
                                *activated = true;
                            }
                        }
                    };
                    for p in &parts {
                        let (mut fi, mut gi) = (0usize, 0usize);
                        while fi < p.folded.len() || gi < p.fragments.len() {
                            let next_is_fold = match (p.folded.get(fi), p.fragments.get(gi)) {
                                (Some(&(fq, _)), Some(&(gq, _, _))) => fq < gq,
                                (Some(_), None) => true,
                                _ => false,
                            };
                            if next_is_fold {
                                let (q, acc) = p.folded[fi];
                                fi += 1;
                                debug_assert!(
                                    frag_acc.is_none_or(|(fq, _)| fq < q),
                                    "a folded quantum cannot also have fragments"
                                );
                                flush(&mut frag_acc, &mut activated);
                                if op.apply(v, acc) {
                                    activated = true;
                                }
                            } else {
                                let (q, u, w) = p.fragments[gi];
                                gi += 1;
                                match &mut frag_acc {
                                    Some((fq, acc)) if *fq == q => {
                                        *acc = op.accumulate(*acc, u, w);
                                    }
                                    pending => {
                                        flush(pending, &mut activated);
                                        *pending = Some((q, op.accumulate(op.identity(), u, w)));
                                    }
                                }
                            }
                        }
                    }
                    flush(&mut frag_acc, &mut activated);
                }
                reduced.push(PartitionOutput {
                    range: v..v + 1,
                    data: PartitionOutputData::Sparse(if activated { vec![v] } else { Vec::new() }),
                });
            }
            data => reduced.push(PartitionOutput {
                range: o.range,
                data,
            }),
        }
    }
    reduced
}

/// Executes one mega-hub sub-chunk: scan the slice `sub` of destination
/// `v`'s CSC in-edge list and **collect** the frontier-active
/// contributions without applying the operator. Applying is deferred to
/// [`reduce_hub_partials`], which replays the collected contributions
/// sequentially in scan order — so splitting a destination's scan across
/// workers never gives it a second writer and never reorders its updates.
///
/// `v`'s destination state is frozen for the whole parallel phase (every
/// update to it is deferred), so the `cond` pre-check here reads exactly
/// the value the unsplit kernel would have seen before its scan.
fn collect_hub_partial<O: EdgeOp>(
    csc: &Csc,
    current: FrontierView<'_>,
    op: &O,
    v: VertexId,
    sub: &plan::SubSpan,
    tally: &mut LocalTally,
) -> PartitionOutput {
    // Count the destination visit once, on its first slice.
    if sub.lo == 0 {
        tally.vertex();
    }
    let mut actives: Vec<(VertexId, f32)> = Vec::new();
    if op.cond(v) {
        let base = csc.offsets()[v as usize];
        for e in base + sub.lo as usize..base + sub.hi as usize {
            tally.edge();
            let u = csc.sources()[e];
            if current.contains(u) {
                actives.push((u, csc.weight_at(e)));
            }
        }
    }
    PartitionOutput {
        range: v..v + 1,
        data: PartitionOutputData::Partial(HubPartial {
            edge_offset: sub.lo,
            actives,
        }),
    }
}

/// Reduces mega-hub partial accumulators into resolved outputs, in
/// ascending `(partition, chunk, sub-chunk)` order.
///
/// `outputs` must be in task-index order (what [`Pool::run_stealing`]
/// returns): a split destination's partials then arrive consecutively, in
/// ascending slice order. The replay applies the collected `(source,
/// weight)` contributions through the **exclusive** `update` path with the
/// same `cond` pre-check and early exit as the unsplit scan
/// ([`pull_vertex`]), single-threaded — so the applied update sequence is
/// bit-identical to never having split the destination, across every cap,
/// thread count and steal schedule. Non-partial outputs pass through
/// untouched.
pub fn reduce_hub_partials<O: EdgeOp>(
    outputs: Vec<PartitionOutput>,
    op: &O,
) -> Vec<PartitionOutput> {
    if !outputs.iter().any(|o| o.is_partial()) {
        return outputs;
    }
    let mut reduced = Vec::with_capacity(outputs.len());
    let mut it = outputs.into_iter().peekable();
    while let Some(o) = it.next() {
        let v = o.range.start;
        match o.data {
            PartitionOutputData::Partial(first) => {
                let mut parts = vec![first];
                while let Some(next) = it.peek() {
                    if next.range.start == v && next.is_partial() {
                        if let PartitionOutputData::Partial(p) = it.next().unwrap().data {
                            parts.push(p);
                        }
                    } else {
                        break;
                    }
                }
                debug_assert!(
                    parts
                        .windows(2)
                        .all(|w| w[0].edge_offset < w[1].edge_offset),
                    "sub-chunk partials must arrive in ascending slice order"
                );
                let mut activated = false;
                if op.cond(v) {
                    'replay: for p in &parts {
                        for &(u, w) in &p.actives {
                            if op.update(u, v, w) {
                                activated = true;
                            }
                            if !op.cond(v) {
                                break 'replay;
                            }
                        }
                    }
                }
                reduced.push(PartitionOutput {
                    range: v..v + 1,
                    data: PartitionOutputData::Sparse(if activated { vec![v] } else { Vec::new() }),
                });
            }
            data => reduced.push(PartitionOutput {
                range: o.range,
                data,
            }),
        }
    }
    reduced
}

/// Discovers the destinations reachable from the frontier through one
/// partition's pruned-CSR source index, as a sorted, deduplicated list —
/// the unit the planner slices into candidate chunks.
///
/// Discovery probes the stored-source index per active vertex when the
/// frontier view is a short list, and scans the (typically small)
/// stored-source index against the view otherwise. Both strategies produce
/// the same candidate set, so the choice never shows in results.
pub fn discover_candidates(part: &PrunedCsr, current: FrontierView<'_>) -> Vec<VertexId> {
    let stored = part.num_stored_vertices();
    let mut candidates: Vec<VertexId> = Vec::new();
    match current.as_list() {
        Some(list) if list.len() < stored => {
            for &u in list {
                if let Ok(i) = part.vertex_ids().binary_search(&u) {
                    candidates.extend_from_slice(part.neighbors_at(i));
                }
            }
        }
        _ => {
            for i in 0..stored {
                if current.contains(part.vertex_ids()[i]) {
                    candidates.extend_from_slice(part.neighbors_at(i));
                }
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

/// Sparse partition kernel: discover the destinations reachable from the
/// frontier through the partition's pruned-CSR source index
/// ([`discover_candidates`]), then pull exactly those destinations in
/// ascending order. The chunked executor runs discovery and pulling
/// separately (slicing the candidate list between them); this single-call
/// form is the unchunked equivalent, kept for differential tests and
/// ad-hoc kernel harnesses.
pub fn pull_candidates<O: EdgeOp, S: FrontierSink>(
    csc: &Csc,
    part: &PrunedCsr,
    current: FrontierView<'_>,
    op: &O,
    sink: &mut S,
    tally: &mut LocalTally,
) {
    for v in discover_candidates(part, current) {
        pull_vertex(csc, current, op, v, sink, tally);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use gg_graph::edge_list::EdgeList;
    use gg_runtime::numa::NumaTopology;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct TouchCount {
        hits: Vec<AtomicU32>,
    }

    impl TouchCount {
        fn new(n: usize) -> Self {
            TouchCount {
                hits: gg_runtime::atomics::atomic_u32_vec(n, 0),
            }
        }
        fn total(&self) -> u32 {
            self.hits.iter().map(|h| h.load(Ordering::Relaxed)).sum()
        }
    }

    impl EdgeOp for TouchCount {
        fn update(&self, _s: u32, d: u32, _w: f32) -> bool {
            self.hits[d as usize].fetch_add(1, Ordering::Relaxed);
            true
        }
        fn update_atomic(&self, s: u32, d: u32, w: f32) -> bool {
            self.update(s, d, w)
        }
    }

    fn build(el: &EdgeList, partitions: usize) -> (GraphStore, PartitionedExec) {
        let config = Config {
            num_partitions: partitions,
            numa: NumaTopology::new(1),
            build_partitioned_csr: true,
            ..Config::for_tests()
        };
        let store = GraphStore::build(el, &config);
        let schedule = PartitionSchedule::new(store.num_partitions(), config.numa);
        let exec = PartitionedExec::new(&store, &schedule);
        (store, exec)
    }

    #[test]
    fn views_cover_all_partitions_and_edges() {
        let el = gg_graph::generators::rmat(7, 900, gg_graph::generators::RmatParams::skewed(), 3);
        let (store, exec) = build(&el, 6);
        assert_eq!(exec.views().len(), store.num_partitions());
        let total: u64 = exec.views().iter().map(|v| v.num_edges).sum();
        assert_eq!(total, 900);
        // Edge order only lists partitions with edges, domain-major.
        for &p in exec.edge_order.as_slice() {
            assert!(exec.views()[p].num_edges > 0);
        }
    }

    #[test]
    fn empty_partitions_never_enter_the_order() {
        // 3 vertices spread over 10 partitions: 7+ empty trailing views.
        let el = EdgeList::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let (store, exec) = build(&el, 10);
        assert_eq!(store.num_partitions(), 10);
        assert!(exec.edge_order.as_slice().len() <= 3);
        let empties = store.edge_parts().empty_partitions();
        assert!(!empties.is_empty());
        for p in empties {
            assert!(!exec.edge_order.as_slice().contains(&p));
        }
    }

    #[test]
    fn both_kernels_apply_identical_updates() {
        let el = gg_graph::generators::rmat(7, 700, gg_graph::generators::RmatParams::skewed(), 8);
        let n = el.num_vertices();
        let (store, exec) = build(&el, 4);
        let pcsr = store.partitioned_csr().unwrap();
        let actives: Vec<u32> = (0..n as u32).step_by(5).collect();
        let bitmap = Bitmap::from_indices(n, &actives);
        let counters = WorkCounters::new();

        for &p in exec.edge_order.as_slice() {
            let view = &exec.views()[p];
            let op_dense = TouchCount::new(n);
            let next_dense = AtomicBitmap::new(n);
            let mut tally = LocalTally::new(&counters);
            pull_range(
                store.csc(),
                FrontierView::Dense(&bitmap),
                &op_dense,
                view.dst_range.clone(),
                &mut AtomicSink(&next_dense),
                &mut tally,
            );
            drop(tally);

            let op_sparse = TouchCount::new(n);
            let next_sparse = AtomicBitmap::new(n);
            let mut tally = LocalTally::new(&counters);
            pull_candidates(
                store.csc(),
                pcsr.part(p),
                FrontierView::Sparse(&actives),
                &op_sparse,
                &mut AtomicSink(&next_sparse),
                &mut tally,
            );
            drop(tally);

            assert_eq!(op_dense.total(), op_sparse.total(), "partition {p}");
            assert_eq!(
                next_dense.into_bitmap(),
                next_sparse.into_bitmap(),
                "partition {p}"
            );
        }
    }

    /// Splitting a mega-hub's in-edge scan into collected partials and
    /// replaying them through `reduce_hub_partials` applies exactly the
    /// updates the unsplit `pull_vertex` scan applies, and resolves to the
    /// same activation.
    #[test]
    fn hub_partial_collect_and_reduce_match_unsplit_pull() {
        // A star: 200 sources all pointing at destination 0.
        let n = 201usize;
        let mut el = EdgeList::new(n);
        for s in 1..201u32 {
            el.push(s, 0);
        }
        let (store, _exec) = build(&el, 1);
        let csc = store.csc();
        let counters = WorkCounters::new();
        let actives: Vec<u32> = (1..201).step_by(3).collect();
        let view = FrontierView::Sparse(&actives);

        // Unsplit reference.
        let op_ref = TouchCount::new(n);
        let next_ref = AtomicBitmap::new(n);
        let mut tally = LocalTally::new(&counters);
        pull_vertex(
            csc,
            view,
            &op_ref,
            0,
            &mut AtomicSink(&next_ref),
            &mut tally,
        );
        drop(tally);

        // Split into sub-chunks of 16 edges, collect, then reduce.
        let chunks = plan::chunk_dense_range(csc.offsets(), 0..1, 16, plan::HubSplit::Always);
        assert!(chunks.len() > 1 && chunks.iter().all(|c| c.sub.is_some()));
        let op_split = TouchCount::new(n);
        let outputs: Vec<PartitionOutput> = chunks
            .iter()
            .map(|c| {
                let mut tally = LocalTally::new(&counters);
                collect_hub_partial(csc, view, &op_split, 0, c.sub.as_ref().unwrap(), &mut tally)
            })
            .collect();
        assert!(outputs.iter().all(|o| o.is_partial()));
        assert_eq!(
            op_split.total(),
            0,
            "collection must not apply the operator"
        );
        let reduced = reduce_hub_partials(outputs, &op_split);
        assert_eq!(reduced.len(), 1, "one resolved output per split hub");
        assert_eq!(op_split.total(), op_ref.total(), "same applied updates");
        let want: Vec<u32> = next_ref
            .into_bitmap()
            .iter_ones()
            .map(|i| i as u32)
            .collect();
        match &reduced[0].data {
            PartitionOutputData::Sparse(list) => assert_eq!(list, &want),
            other => panic!("expected a resolved sparse output, got {other:?}"),
        }
        assert_eq!(reduced[0].range, 0..1);
    }

    /// The replay honours `cond` early exit exactly like the unsplit scan:
    /// a claim-once operator applies one update no matter how many active
    /// contributions the sub-chunks collected past the claim.
    #[test]
    fn hub_partial_reduce_honours_cond_early_exit() {
        struct ClaimOnce {
            claimed: AtomicU32,
            applied: AtomicU32,
        }
        impl EdgeOp for ClaimOnce {
            fn update(&self, _s: u32, _d: u32, _w: f32) -> bool {
                self.applied.fetch_add(1, Ordering::Relaxed);
                self.claimed.store(1, Ordering::Relaxed);
                true
            }
            fn update_atomic(&self, s: u32, d: u32, w: f32) -> bool {
                self.update(s, d, w)
            }
            fn cond(&self, _d: u32) -> bool {
                self.claimed.load(Ordering::Relaxed) == 0
            }
        }
        let n = 101usize;
        let mut el = EdgeList::new(n);
        for s in 1..101u32 {
            el.push(s, 0);
        }
        let (store, _exec) = build(&el, 1);
        let csc = store.csc();
        let counters = WorkCounters::new();
        let actives: Vec<u32> = (1..101).collect();
        let view = FrontierView::Sparse(&actives);

        let chunks = plan::chunk_dense_range(csc.offsets(), 0..1, 10, plan::HubSplit::Always);
        let op = ClaimOnce {
            claimed: AtomicU32::new(0),
            applied: AtomicU32::new(0),
        };
        let outputs: Vec<PartitionOutput> = chunks
            .iter()
            .map(|c| {
                let mut tally = LocalTally::new(&counters);
                collect_hub_partial(csc, view, &op, 0, c.sub.as_ref().unwrap(), &mut tally)
            })
            .collect();
        let reduced = reduce_hub_partials(outputs, &op);
        assert_eq!(
            op.applied.load(Ordering::Relaxed),
            1,
            "cond early exit must stop the replay after the claim"
        );
        match &reduced[0].data {
            PartitionOutputData::Sparse(list) => assert_eq!(list, &vec![0u32]),
            other => panic!("the claimed hub must activate, got {other:?}"),
        }
    }

    /// The typed sinks record the same activation set as the shared atomic
    /// bitmap, for both planned representations, and round-trip through
    /// `PartitionOutput`.
    #[test]
    fn typed_sinks_match_the_atomic_bitmap() {
        let el = gg_graph::generators::rmat(7, 700, gg_graph::generators::RmatParams::skewed(), 4);
        let n = el.num_vertices();
        let (store, exec) = build(&el, 4);
        let actives: Vec<u32> = (0..n as u32).step_by(3).collect();
        let view_of = FrontierView::Sparse(&actives);
        let counters = WorkCounters::new();

        for &p in exec.edge_order.as_slice() {
            let range = exec.views()[p].dst_range.clone();
            let op = TouchCount::new(n);
            let next = AtomicBitmap::new(n);
            let mut tally = LocalTally::new(&counters);
            pull_range(
                store.csc(),
                view_of,
                &op,
                range.clone(),
                &mut AtomicSink(&next),
                &mut tally,
            );
            drop(tally);
            let want: Vec<u32> = next.into_bitmap().iter_ones().map(|i| i as u32).collect();

            for repr in [OutputRepr::Sparse, OutputRepr::Dense] {
                let op = TouchCount::new(n);
                let mut sink = PartSink::new(repr, range.clone());
                let mut tally = LocalTally::new(&counters);
                pull_range(
                    store.csc(),
                    view_of,
                    &op,
                    range.clone(),
                    &mut sink,
                    &mut tally,
                );
                drop(tally);
                let out = sink.into_output();
                assert_eq!(out.range, range, "partition {p} {repr:?}");
                let got: Vec<u32> = match &out.data {
                    PartitionOutputData::Sparse(list) => list.clone(),
                    PartitionOutputData::Dense(seg) => seg.to_indices(),
                    PartitionOutputData::Partial(_) | PartitionOutputData::ReducePartial(_) => {
                        panic!("sinks never produce partials")
                    }
                };
                assert_eq!(got, want, "partition {p} {repr:?}");
                assert_eq!(out.count(), want.len(), "partition {p} {repr:?}");
            }
        }
    }

    /// A sum operator on the reduce path: accumulates `src + 1` so the
    /// f64 grouping of the fold is observable.
    struct SumInto {
        acc: Vec<gg_runtime::atomics::AtomicF64>,
    }

    impl SumInto {
        fn new(n: usize) -> Self {
            SumInto {
                acc: gg_runtime::atomics::atomic_f64_vec(n, 0.0),
            }
        }
        fn at(&self, v: usize) -> f64 {
            self.acc[v].load()
        }
    }

    impl EdgeOp for SumInto {
        fn update(&self, s: u32, d: u32, _w: f32) -> bool {
            self.acc[d as usize].add_exclusive((s + 1) as f64);
            true
        }
        fn update_atomic(&self, s: u32, d: u32, w: f32) -> bool {
            self.update(s, d, w)
        }
    }

    impl EdgeMapReduce for SumInto {
        fn identity(&self) -> f64 {
            0.0
        }
        fn accumulate(&self, acc: f64, src: u32, _w: f32) -> f64 {
            acc + (src + 1) as f64
        }
        fn combine(&self, a: f64, b: f64) -> f64 {
            a + b
        }
        fn apply(&self, dst: u32, acc: f64) -> bool {
            self.acc[dst as usize].add_exclusive(acc);
            true
        }
    }

    /// Pre-reducing a split hub through `collect_hub_reduce_partial` +
    /// `reduce_hub_quanta` is bit-identical to the unsplit
    /// `pull_vertex_reduce` scan, for sub-chunk caps both smaller and
    /// larger than the quantum and for caps not aligned to it.
    #[test]
    fn hub_reduce_partials_match_unsplit_quantum_fold() {
        let n = 301usize;
        let mut el = EdgeList::new(n);
        for s in 1..301u32 {
            el.push(s, 0);
        }
        let (store, _exec) = build(&el, 1);
        let csc = store.csc();
        let counters = WorkCounters::new();
        let actives: Vec<u32> = (1..301).step_by(2).collect();
        let view = FrontierView::Sparse(&actives);

        // Unsplit reference: one quantum-folded scan.
        let op_ref = SumInto::new(n);
        let next_ref = AtomicBitmap::new(n);
        let mut tally = LocalTally::new(&counters);
        pull_vertex_reduce(
            csc,
            view,
            &op_ref,
            0,
            &mut AtomicSink(&next_ref),
            &mut tally,
        );
        drop(tally);
        assert!(next_ref.into_bitmap().get(0));

        // Caps below, above and misaligned with REDUCE_QUANTUM.
        for cap in [7usize, 16, 64, 100, 250] {
            let chunks = plan::chunk_dense_range(csc.offsets(), 0..1, cap, plan::HubSplit::Always);
            assert!(chunks.iter().all(|c| c.sub.is_some()), "cap {cap}");
            let op = SumInto::new(n);
            let outputs: Vec<PartitionOutput> = chunks
                .iter()
                .map(|c| {
                    let mut tally = LocalTally::new(&counters);
                    collect_hub_reduce_partial(
                        csc,
                        view,
                        &op,
                        0,
                        c.sub.as_ref().unwrap(),
                        &mut tally,
                    )
                })
                .collect();
            assert!(outputs.iter().all(|o| o.is_partial()), "cap {cap}");
            assert_eq!(op.at(0).to_bits(), 0f64.to_bits(), "collect must defer");
            let reduced = reduce_hub_quanta(outputs, &op);
            assert_eq!(reduced.len(), 1, "cap {cap}");
            assert_eq!(
                op.at(0).to_bits(),
                op_ref.at(0).to_bits(),
                "cap {cap}: split fold must be bit-identical to unsplit"
            );
            match &reduced[0].data {
                PartitionOutputData::Sparse(list) => assert_eq!(list, &vec![0u32], "cap {cap}"),
                other => panic!("expected resolved sparse output, got {other:?}"),
            }
        }
    }
}
