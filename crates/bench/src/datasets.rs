//! Synthetic stand-ins for the paper's Table I data sets.
//!
//! The real graphs (Twitter, Friendster, …) are multi-billion-edge
//! downloads that cannot ship with a reproduction; each stand-in matches
//! the *shape* that drives the paper's phenomena — degree skew, diameter,
//! density and directedness — at a size a laptop sweeps in minutes. All
//! generation is deterministic.

use gg_graph::edge_list::EdgeList;
use gg_graph::generators::{self, RmatParams};
use gg_graph::ops::symmetrize;
use gg_graph::properties::GraphStats;

/// The eight data sets of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Twitter stand-in: heavily skewed RMAT, directed.
    Twitter,
    /// Friendster stand-in: milder RMAT, more vertices, directed.
    Friendster,
    /// Orkut stand-in: power-law, symmetrized (undirected).
    Orkut,
    /// LiveJournal stand-in: skewed RMAT, directed.
    LiveJournal,
    /// Yahoo_mem stand-in: Erdős–Rényi, symmetrized (undirected).
    YahooMem,
    /// USAroad stand-in: 2-D grid with diagonals, undirected.
    UsaRoad,
    /// The paper's own synthetic power-law (α = 2.0), directed.
    Powerlaw,
    /// The paper's RMAT27 synthetic, directed.
    Rmat27,
}

impl Dataset {
    /// All data sets in Table I order.
    pub fn all() -> [Dataset; 8] {
        [
            Dataset::Twitter,
            Dataset::Friendster,
            Dataset::Orkut,
            Dataset::LiveJournal,
            Dataset::YahooMem,
            Dataset::UsaRoad,
            Dataset::Powerlaw,
            Dataset::Rmat27,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Twitter => "Twitter",
            Dataset::Friendster => "Friendster",
            Dataset::Orkut => "Orkut",
            Dataset::LiveJournal => "LiveJournal",
            Dataset::YahooMem => "Yahoo_mem",
            Dataset::UsaRoad => "USAroad",
            Dataset::Powerlaw => "Powerlaw",
            Dataset::Rmat27 => "RMAT27",
        }
    }

    /// Whether Table I lists the graph as undirected.
    pub fn undirected(self) -> bool {
        matches!(self, Dataset::Orkut | Dataset::YahooMem | Dataset::UsaRoad)
    }

    /// Builds the stand-in at `scale` (1.0 = default bench size; tests use
    /// much smaller values). Deterministic.
    pub fn build(self, scale: f64) -> EdgeList {
        assert!(scale > 0.0, "scale must be positive");
        // log2 adjustment for vertex-count scales.
        let s = |base: u32| -> u32 {
            let adj = scale.log2().round() as i32;
            (base as i32 + adj).clamp(6, 28) as u32
        };
        let m = |base: usize| -> usize { ((base as f64 * scale) as usize).max(1000) };
        match self {
            Dataset::Twitter => generators::rmat(s(18), m(4_000_000), RmatParams::skewed(), 42),
            Dataset::Friendster => generators::rmat(s(19), m(4_000_000), RmatParams::mild(), 43),
            Dataset::Orkut => symmetrize(&generators::chung_lu(m(120_000), m(2_000_000), 2.3, 44)),
            Dataset::LiveJournal => generators::rmat(s(17), m(1_500_000), RmatParams::skewed(), 45),
            Dataset::YahooMem => symmetrize(&generators::erdos_renyi(m(80_000), m(800_000), 46)),
            Dataset::UsaRoad => {
                let side = ((500_000.0 * scale).sqrt() as usize).max(32);
                generators::grid_road(side, side, 0.05, 47)
            }
            Dataset::Powerlaw => generators::chung_lu(m(400_000), m(3_000_000), 2.0, 48),
            Dataset::Rmat27 => generators::rmat(s(18), m(3_000_000), RmatParams::skewed(), 49),
        }
    }

    /// Builds and prints a Table I-style characterisation row.
    pub fn stats_row(self, scale: f64) -> (String, GraphStats) {
        let el = self.build(scale);
        (self.name().to_string(), GraphStats::compute(&el))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SCALE: f64 = 0.01;

    #[test]
    fn all_datasets_build_at_test_scale() {
        for d in Dataset::all() {
            let el = d.build(TEST_SCALE);
            assert!(el.num_vertices() > 0, "{d:?}");
            assert!(el.num_edges() >= 1000, "{d:?}");
            el.validate().unwrap();
        }
    }

    #[test]
    fn undirected_datasets_are_symmetric() {
        for d in [Dataset::Orkut, Dataset::YahooMem, Dataset::UsaRoad] {
            let el = d.build(TEST_SCALE);
            assert!(
                GraphStats::compute(&el).symmetric,
                "{d:?} should be symmetric"
            );
        }
    }

    #[test]
    fn twitter_like_is_skewed() {
        let el = Dataset::Twitter.build(TEST_SCALE);
        let stats = GraphStats::compute(&el);
        assert!(
            stats.max_out_degree as f64 > 20.0 * stats.avg_degree,
            "skew too weak: max {} avg {}",
            stats.max_out_degree,
            stats.avg_degree
        );
    }

    #[test]
    fn road_like_has_low_degree() {
        let el = Dataset::UsaRoad.build(TEST_SCALE);
        let stats = GraphStats::compute(&el);
        assert!(stats.max_out_degree <= 6);
    }

    #[test]
    fn deterministic_across_builds() {
        let a = Dataset::LiveJournal.build(TEST_SCALE);
        let b = Dataset::LiveJournal.build(TEST_SCALE);
        assert_eq!(a, b);
    }
}
