//! The Ligra traversal policy (Shun & Blelloch, PPoPP 2013).
//!
//! * One unpartitioned CSR + one unpartitioned CSC (2 graph copies).
//! * Two-way frontier classification at `|F| + Σ deg_out(F) > |E| / 20`.
//! * Dense traversal direction is the **programmer's declaration**
//!   (Table II's "edge traversal" column) — forward pushes over CSR with
//!   atomics, backward pulls over CSC without atomics.
//! * Dense work division: even *vertex-count* chunks; on skewed graphs
//!   this is the load imbalance §IV.A identifies.

use gg_core::edge_map::{self, EdgeOp};
use gg_core::engine::{Direction, EdgeMapSpec, Engine};
use gg_core::frontier::Frontier;
use gg_graph::csc::Csc;
use gg_graph::csr::Csr;
use gg_graph::edge_list::EdgeList;
use gg_graph::types::VertexId;
use gg_runtime::counters::WorkCounters;
use gg_runtime::pool::Pool;

use crate::common::{even_vertex_ranges, EngineBase};

/// Ligra's sparse threshold divisor (`|E| / 20`).
const SPARSE_DIVISOR: u64 = 20;

/// The Ligra baseline engine.
#[derive(Debug)]
pub struct Ligra {
    base: EngineBase,
    csr: Csr,
    csc: Csc,
    dense_ranges: Vec<std::ops::Range<VertexId>>,
}

impl Ligra {
    /// Builds the engine with `threads` workers.
    pub fn new(el: &EdgeList, threads: usize) -> Self {
        let base = EngineBase::new(el.out_degrees(), el.num_edges(), threads);
        let csr = Csr::from_edge_list(el);
        let csc = Csc::from_edge_list(el);
        let dense_ranges = even_vertex_ranges(el.num_vertices(), threads * 8);
        Ligra {
            base,
            csr,
            csc,
            dense_ranges,
        }
    }

    /// The underlying CSR (exposed for storage accounting).
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The underlying CSC.
    pub fn csc(&self) -> &Csc {
        &self.csc
    }
}

impl Engine for Ligra {
    fn num_vertices(&self) -> usize {
        self.base.n
    }

    fn num_edges(&self) -> usize {
        self.base.m
    }

    fn out_degrees(&self) -> &[u32] {
        &self.base.out_degrees
    }

    fn pool(&self) -> &Pool {
        &self.base.pool
    }

    fn work_counters(&self) -> &WorkCounters {
        &self.base.counters
    }

    fn name(&self) -> &'static str {
        "Ligra"
    }

    fn edge_map<O: EdgeOp>(&self, frontier: &Frontier, op: &O, spec: EdgeMapSpec) -> Frontier {
        if frontier.is_empty() {
            return Frontier::empty(self.base.n);
        }
        let sparse = frontier.density_metric() <= self.base.m as u64 / SPARSE_DIVISOR;
        if sparse {
            let active = frontier.to_vertex_list();
            let out = edge_map::sparse_forward_csr(
                &self.csr,
                &active,
                op,
                &self.base.pool,
                &self.base.scratch,
                &self.base.counters,
            );
            return Frontier::from_sparse(out, self.base.n, &self.base.out_degrees);
        }
        let current = frontier.to_bitmap();
        let next = match spec.preferred {
            Direction::Forward => edge_map::dense_forward_csr(
                &self.csr,
                &current,
                op,
                &self.base.pool,
                &self.base.counters,
            ),
            Direction::Backward => edge_map::medium_backward_csc(
                &self.csc,
                &current,
                op,
                &self.base.pool,
                &self.dense_ranges,
                &self.base.counters,
            ),
        };
        Frontier::from_atomic(next, &self.base.out_degrees, &self.base.pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gg_graph::generators;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct MinLabel {
        labels: Vec<AtomicU32>,
    }

    impl MinLabel {
        fn new(n: usize) -> Self {
            MinLabel {
                labels: (0..n as u32).map(AtomicU32::new).collect(),
            }
        }
    }

    impl EdgeOp for MinLabel {
        fn update(&self, s: u32, d: u32, _w: f32) -> bool {
            let sl = self.labels[s as usize].load(Ordering::Relaxed);
            let dl = self.labels[d as usize].load(Ordering::Relaxed);
            if sl < dl {
                self.labels[d as usize].store(sl, Ordering::Relaxed);
                true
            } else {
                false
            }
        }
        fn update_atomic(&self, s: u32, d: u32, _w: f32) -> bool {
            let sl = self.labels[s as usize].load(Ordering::Relaxed);
            gg_runtime::atomics::fetch_min_u32(&self.labels[d as usize], sl)
        }
    }

    #[test]
    fn dense_forward_and_backward_reach_same_fixpoint() {
        let el = gg_graph::ops::symmetrize(&generators::rmat(
            7,
            700,
            generators::RmatParams::skewed(),
            3,
        ));
        let run = |dir: Direction| {
            let engine = Ligra::new(&el, 2);
            let op = MinLabel::new(engine.num_vertices());
            let mut f = engine.frontier_all();
            let spec = EdgeMapSpec::edge_oriented().with_direction(dir);
            while !f.is_empty() {
                f = engine.edge_map(&f, &op, spec);
            }
            op.labels
                .iter()
                .map(|l| l.load(Ordering::Relaxed))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(Direction::Forward), run(Direction::Backward));
    }

    #[test]
    fn sparse_path_taken_for_small_frontiers() {
        let el = generators::erdos_renyi(300, 3000, 4);
        let engine = Ligra::new(&el, 2);
        let op = MinLabel::new(300);
        // Single vertex: metric ~ its degree + 1 << 3000/20.
        let next = engine.edge_map(
            &engine.frontier_single(5),
            &op,
            EdgeMapSpec::edge_oriented(),
        );
        // Sparse output is a sparse representation.
        assert!(next.is_sparse_repr());
    }

    #[test]
    fn reports_identity() {
        let el = generators::erdos_renyi(10, 20, 1);
        let engine = Ligra::new(&el, 2);
        assert_eq!(engine.name(), "Ligra");
        assert_eq!(engine.num_vertices(), 10);
        assert_eq!(engine.num_edges(), 20);
    }
}
