//! A recycling pool for the word buffers behind dense frontier merges.
//!
//! The partitioned executor's dense merge used to allocate (and zero) an
//! `O(|V| / 64)`-word bitmap every round it was paid. Rounds alternate
//! between at most a couple of live frontiers, so the buffer of the frontier
//! that just died is exactly the right size for the merge that is about to
//! happen. [`BufferPool`] closes that loop: the engine hands a dying dense
//! frontier's words back (together with the list of words the merge
//! actually touched), and the next merge takes them out again, clearing
//! **only the touched words** instead of the whole buffer — so a merge
//! whose output is small pays proportional cleanup, not `O(|V| / 64)`
//! zeroing.
//!
//! The pool is engine-owned and shared by `Arc`; returning and taking are
//! short critical sections on a plain mutex (at most a handful of buffers
//! ever live). Recycling is strictly an allocation optimisation: a cleared
//! recycled buffer is indistinguishable from a fresh one (debug builds
//! assert it), so results never depend on pool hits.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// A returned word buffer plus the knowledge needed to clean it cheaply.
#[derive(Debug)]
struct WordBuffer {
    words: Vec<u64>,
    /// Indices of the words that may be non-zero. `None` means the buffer
    /// came back without tracking (assume fully dirty).
    touched: Option<Vec<u32>>,
}

/// Recycles dense-merge word buffers across rounds.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Mutex<Vec<WordBuffer>>,
    /// `take` calls served from the free list.
    recycled: AtomicU64,
    /// `take` calls that had to allocate fresh.
    allocated: AtomicU64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an all-zeros buffer of exactly `len` words plus an empty
    /// touched-word scratch list for the caller to fill while writing.
    /// Serves from the free list when possible (clearing only the words the
    /// previous user touched), allocating fresh otherwise.
    pub fn take(&self, len: usize) -> (Vec<u64>, Vec<u32>) {
        // Poison-tolerant (here and below): the free list is plain data
        // with no invariant a panicking holder could break mid-update, and
        // the engine drops `Arc<BufferPool>`s on teardown paths that must
        // not panic again after a caught worker panic.
        let entry = self
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        let (words, touched) = match entry {
            Some(WordBuffer { mut words, touched }) => {
                self.recycled.fetch_add(1, Ordering::Relaxed);
                let scratch = match touched {
                    Some(list) => {
                        for &w in &list {
                            if let Some(slot) = words.get_mut(w as usize) {
                                *slot = 0;
                            }
                        }
                        let mut scratch = list;
                        scratch.clear();
                        scratch
                    }
                    None => {
                        words.fill(0);
                        Vec::new()
                    }
                };
                words.resize(len, 0);
                (words, scratch)
            }
            None => {
                self.allocated.fetch_add(1, Ordering::Relaxed);
                (vec![0; len], Vec::new())
            }
        };
        debug_assert!(
            words.iter().all(|&w| w == 0),
            "recycled buffer must come out all-zeros"
        );
        (words, touched)
    }

    /// Returns a buffer to the pool. `touched` lists every word index that
    /// may be non-zero; pass `None` when the writes were not tracked (the
    /// next `take` then zeroes the whole buffer).
    pub fn put(&self, words: Vec<u64>, touched: Option<Vec<u32>>) {
        if words.is_empty() {
            return;
        }
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(WordBuffer { words, touched });
    }

    /// `take` calls served from the free list so far.
    pub fn recycled(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }

    /// `take` calls that allocated fresh so far.
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Buffers currently sitting in the free list.
    pub fn idle_buffers(&self) -> usize {
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_take_allocates_zeroed() {
        let pool = BufferPool::new();
        let (words, touched) = pool.take(5);
        assert_eq!(words, vec![0; 5]);
        assert!(touched.is_empty());
        assert_eq!(pool.allocated(), 1);
        assert_eq!(pool.recycled(), 0);
    }

    #[test]
    fn touched_word_clearing_round_trips() {
        let pool = BufferPool::new();
        let (mut words, mut touched) = pool.take(8);
        words[2] = 0xFF;
        words[7] = 1;
        touched.extend([2, 7]);
        pool.put(words, Some(touched));
        assert_eq!(pool.idle_buffers(), 1);

        let (words, touched) = pool.take(8);
        assert_eq!(words, vec![0; 8], "touched words must be re-zeroed");
        assert!(touched.is_empty());
        assert_eq!(pool.recycled(), 1);
    }

    #[test]
    fn untracked_return_is_fully_cleared() {
        let pool = BufferPool::new();
        pool.put(vec![u64::MAX; 6], None);
        let (words, _) = pool.take(6);
        assert_eq!(words, vec![0; 6]);
    }

    #[test]
    fn resizing_preserves_the_all_zeros_contract() {
        let pool = BufferPool::new();
        let (mut words, mut touched) = pool.take(4);
        words[3] = 9;
        touched.push(3);
        pool.put(words, Some(touched));
        // Grow.
        let (words, _) = pool.take(10);
        assert_eq!(words, vec![0; 10]);
        let mut words = words;
        words[9] = 1;
        pool.put(words, Some(vec![9]));
        // Shrink below the dirty word.
        let (words, _) = pool.take(3);
        assert_eq!(words, vec![0; 3]);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let pool = BufferPool::new();
        pool.put(Vec::new(), None);
        assert_eq!(pool.idle_buffers(), 0);
    }

    /// Regression: a thread panicking while holding the free-list lock
    /// poisons the mutex; every later operation (and the pool's own drop)
    /// used to `unwrap()` and panic again — an abort when reached from a
    /// drop. The pool must keep recycling through the poison.
    #[test]
    fn pool_survives_a_poisoned_free_list() {
        let pool = std::sync::Arc::new(BufferPool::new());
        pool.put(vec![7; 4], None);
        let p = std::sync::Arc::clone(&pool);
        let _ = std::thread::spawn(move || {
            let _guard = p.free.lock().unwrap();
            panic!("poison the free list");
        })
        .join();
        assert!(pool.free.is_poisoned());
        assert_eq!(pool.idle_buffers(), 1);
        let (words, _) = pool.take(4);
        assert_eq!(words, vec![0; 4]);
        assert_eq!(pool.recycled(), 1);
        pool.put(words, Some(Vec::new()));
        assert_eq!(pool.idle_buffers(), 1);
        drop(pool); // must not panic-in-drop
    }
}
