//! Fixed-size bitmaps used for dense frontier representation.
//!
//! The paper represents dense and medium-dense frontiers as bitmaps (§II.A).
//! Three variants are provided:
//!
//! * [`Bitmap`] — a plain, single-owner bitmap with fast word-level scans;
//! * [`AtomicBitmap`] — a concurrently writable bitmap used as the *next*
//!   frontier while an edge map is in flight. Bits are set with relaxed
//!   `fetch_or`, which is an unconditional read-modify-write: far cheaper
//!   than the compare-and-set loops the paper's "+a" configurations need for
//!   value updates, and safe even when a 64-bit word straddles a partition
//!   boundary.
//! * [`BitmapSegment`] — a range-aligned *view-sized* bitmap covering only
//!   one partition's destination range. The partitioned executor's dense
//!   output buffers are segments: each partition task owns its segment
//!   exclusively (no atomics), sized to the range rather than to `|V|`, and
//!   segments [`splice`](BitmapSegment::splice_into) back into a whole-graph
//!   [`Bitmap`] with word-level ORs when a dense merge is required.

use std::sync::atomic::{AtomicU64, Ordering};

const WORD_BITS: usize = 64;

#[inline]
fn word_count(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

/// A plain fixed-length bitmap over `len` bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an all-zeros bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; word_count(len)],
            len,
        }
    }

    /// Creates an all-ones bitmap of `len` bits.
    pub fn full(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; word_count(len)],
            len,
        };
        b.clear_tail();
        b
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zeroes any bits beyond `len` in the final word so `count_ones` stays
    /// exact.
    fn clear_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn unset(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the indices of set bits in increasing order.
    ///
    /// Returns the concrete [`Ones`] iterator (nameable, allocation-free),
    /// so callers that embed it in their own enum iterators pay no boxing
    /// or dynamic dispatch.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones::new(&self.words)
    }

    /// Calls `f` for every set bit within `range`, in increasing order.
    /// Word-level scan with boundary-word masking — the shared primitive
    /// behind per-partition frontier statistics and vertex maps.
    pub fn for_each_one_in_range<F: FnMut(usize)>(&self, range: std::ops::Range<usize>, mut f: F) {
        let (start, end) = (range.start, range.end);
        debug_assert!(start <= end && end <= self.len);
        if start >= end {
            return;
        }
        let first = start / WORD_BITS;
        for (off, &word) in self.words[first..end.div_ceil(WORD_BITS)]
            .iter()
            .enumerate()
        {
            let wi = first + off;
            let mut bits = word;
            // Mask off bits outside [start, end) in boundary words.
            if wi == first {
                bits &= u64::MAX << (start % WORD_BITS);
            }
            if wi == end / WORD_BITS && end % WORD_BITS != 0 {
                bits &= (1u64 << (end % WORD_BITS)) - 1;
            }
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(wi * WORD_BITS + b);
            }
        }
    }

    /// Raw word storage (read-only), for bulk operations.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Builds a bitmap of `len` bits with the given indices set.
    pub fn from_indices(len: usize, idxs: &[u32]) -> Self {
        let mut b = Bitmap::new(len);
        for &i in idxs {
            b.set(i as usize);
        }
        b
    }

    /// Wraps an **all-zeros** word buffer (for example one recycled through
    /// a buffer pool) as a bitmap of `len` bits, without allocating.
    ///
    /// # Panics
    /// Panics if `words.len()` is not exactly the word count for `len`;
    /// debug builds additionally assert the buffer is all-zeros.
    pub fn from_zeroed_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), word_count(len), "word buffer sized wrongly");
        debug_assert!(words.iter().all(|&w| w == 0), "buffer must be zeroed");
        Bitmap { words, len }
    }

    /// Takes the word storage out of the bitmap (for recycling through a
    /// buffer pool), leaving it empty.
    pub fn take_words(&mut self) -> Vec<u64> {
        self.len = 0;
        std::mem::take(&mut self.words)
    }
}

/// Concrete iterator over the set bits of a [`Bitmap`], in increasing
/// order. Word-at-a-time with `trailing_zeros`, no allocation.
#[derive(Clone, Debug)]
pub struct Ones<'a> {
    words: &'a [u64],
    word_index: usize,
    bits: u64,
}

impl<'a> Ones<'a> {
    fn new(words: &'a [u64]) -> Self {
        Ones {
            words,
            word_index: 0,
            bits: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.bits = self.words[self.word_index];
        }
        let b = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.word_index * WORD_BITS + b)
    }
}

/// A range-aligned dense bitmap covering one contiguous sub-range of the
/// vertex space: bit `i` of the segment corresponds to the *global* index
/// `start + i`.
///
/// This is the partitioned executor's dense output buffer: sized to the
/// partition's destination range (not `|V|`), owned by exactly one task
/// (plain stores, no atomics), and spliced back into a whole-graph
/// [`Bitmap`] with shifted word-level ORs only when a dense merge is
/// actually required.
///
/// ```
/// use gg_graph::bitmap::{Bitmap, BitmapSegment};
///
/// let mut seg = BitmapSegment::new(70..200);
/// seg.set(70);
/// seg.set(130);
/// assert!(seg.get(130) && !seg.get(131));
/// assert_eq!(seg.iter_ones().collect::<Vec<_>>(), vec![70, 130]);
///
/// let mut whole = Bitmap::new(256);
/// seg.splice_into(&mut whole);
/// assert!(whole.get(70) && whole.get(130));
/// assert_eq!(whole.count_ones(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitmapSegment {
    /// First global bit index covered by the segment.
    start: usize,
    /// Number of bits covered.
    len: usize,
    /// Local storage; local bit `i` ↔ global bit `start + i`.
    words: Vec<u64>,
}

impl BitmapSegment {
    /// An all-zeros segment covering the global index range `range`.
    pub fn new(range: std::ops::Range<usize>) -> Self {
        let len = range.end.saturating_sub(range.start);
        BitmapSegment {
            start: range.start,
            len,
            words: vec![0; word_count(len)],
        }
    }

    /// The global index range this segment covers.
    #[inline]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }

    /// Number of bits covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the segment covers zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the bit for *global* index `i` (must lie inside the range).
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(self.range().contains(&i), "index {i} outside segment");
        let local = i - self.start;
        self.words[local / WORD_BITS] |= 1u64 << (local % WORD_BITS);
    }

    /// Reads the bit for *global* index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(self.range().contains(&i), "index {i} outside segment");
        let local = i - self.start;
        (self.words[local / WORD_BITS] >> (local % WORD_BITS)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of backing words — the merge-work cost of splicing this
    /// segment (`O(range / 64)`, never `O(|V| / 64)`).
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Calls `f` for every set bit, passing *global* indices in increasing
    /// order.
    pub fn for_each_one<F: FnMut(usize)>(&self, mut f: F) {
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(self.start + wi * WORD_BITS + b);
            }
        }
    }

    /// Iterates set bits as *global* indices in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        let start = self.start;
        Ones::new(&self.words).map(move |i| start + i)
    }

    /// Sorted global indices of all set bits.
    pub fn to_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        self.for_each_one(|i| out.push(i as u32));
        out
    }

    /// Builds a segment over `range` with the given *global* indices set.
    pub fn from_indices(range: std::ops::Range<usize>, idxs: &[u32]) -> Self {
        let mut seg = BitmapSegment::new(range);
        for &i in idxs {
            seg.set(i as usize);
        }
        seg
    }

    /// ORs this segment into `target` at its global position with shifted
    /// word-level operations — `O(num_words)` regardless of `target.len()`.
    ///
    /// # Panics
    /// Panics if the segment's range extends beyond `target`.
    pub fn splice_into(&self, target: &mut Bitmap) {
        assert!(
            self.start + self.len <= target.len(),
            "segment {:?} exceeds bitmap of {} bits",
            self.range(),
            target.len()
        );
        if self.len == 0 {
            return;
        }
        let shift = self.start % WORD_BITS;
        let base = self.start / WORD_BITS;
        if shift == 0 {
            for (wi, &w) in self.words.iter().enumerate() {
                target.words[base + wi] |= w;
            }
        } else {
            for (wi, &w) in self.words.iter().enumerate() {
                target.words[base + wi] |= w << shift;
                let spill = w >> (WORD_BITS - shift);
                if spill != 0 {
                    target.words[base + wi + 1] |= spill;
                }
            }
        }
    }
}

/// A bitmap whose bits may be set concurrently from many threads.
///
/// Used as the *next* frontier during parallel edge traversal: partitions own
/// disjoint destination ranges but a 64-bit word may straddle two partitions,
/// so bit sets always use `fetch_or` (relaxed).
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitmap {
    /// Creates an all-zeros atomic bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        let mut words = Vec::with_capacity(word_count(len));
        words.resize_with(word_count(len), || AtomicU64::new(0));
        AtomicBitmap { words, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i` (relaxed).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / WORD_BITS].load(Ordering::Relaxed) >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i`; returns `true` if this call changed it from 0 to 1.
    ///
    /// The return value lets a sparse traversal claim activation of a vertex
    /// exactly once without a separate duplicate-removal pass.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % WORD_BITS);
        let prev = self.words[i / WORD_BITS].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Clears bit `i` (atomic `fetch_and`). Used to return a shared scratch
    /// bitmap to all-zeros by unsetting exactly the bits that were claimed.
    #[inline]
    pub fn unset(&self, i: usize) {
        debug_assert!(i < self.len);
        let mask = !(1u64 << (i % WORD_BITS));
        self.words[i / WORD_BITS].fetch_and(mask, Ordering::Relaxed);
    }

    /// Clears every bit (not thread-safe with concurrent setters).
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w.get_mut() = 0;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Converts into a plain [`Bitmap`] without copying word contents
    /// atomically (callers must have quiesced all writers).
    pub fn into_bitmap(self) -> Bitmap {
        let words = self.words.into_iter().map(AtomicU64::into_inner).collect();
        Bitmap {
            words,
            len: self.len,
        }
    }

    /// Copies the current contents into a plain [`Bitmap`].
    pub fn snapshot(&self) -> Bitmap {
        Bitmap {
            words: self
                .words
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            len: self.len,
        }
    }
}

impl From<Bitmap> for AtomicBitmap {
    fn from(b: Bitmap) -> Self {
        AtomicBitmap {
            words: b.words.into_iter().map(AtomicU64::new).collect(),
            len: b.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitmap::new(130);
        assert_eq!(b.count_ones(), 0);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count_ones(), 4);
        b.unset(63);
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn full_respects_length() {
        let b = Bitmap::full(70);
        assert_eq!(b.count_ones(), 70);
        let b = Bitmap::full(64);
        assert_eq!(b.count_ones(), 64);
        let b = Bitmap::full(0);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn iter_ones_in_order() {
        let b = Bitmap::from_indices(200, &[5, 64, 65, 199, 0]);
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 5, 64, 65, 199]);
    }

    #[test]
    fn ranged_iteration_matches_filtered_iter_ones() {
        let idxs: Vec<u32> = (0..300).step_by(7).collect();
        let b = Bitmap::from_indices(300, &idxs);
        for range in [
            0usize..300,
            0..64,
            63..65,
            64..128,
            17..211,
            299..300,
            5..5,
            64..64,
        ] {
            let mut got = Vec::new();
            b.for_each_one_in_range(range.clone(), |i| got.push(i));
            let want: Vec<usize> = b.iter_ones().filter(|i| range.contains(i)).collect();
            assert_eq!(got, want, "range {range:?}");
        }
    }

    #[test]
    fn atomic_set_reports_first_setter() {
        let b = AtomicBitmap::new(100);
        assert!(b.set(42));
        assert!(!b.set(42));
        assert!(b.get(42));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn atomic_concurrent_sets() {
        use std::sync::Arc;
        let b = Arc::new(AtomicBitmap::new(10_000));
        let mut handles = Vec::new();
        for t in 0..8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut claimed = 0usize;
                for i in (t..10_000).step_by(1) {
                    if b.set(i) {
                        claimed += 1;
                    }
                }
                claimed
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Every bit is claimed by exactly one thread.
        assert_eq!(total, 10_000);
        assert_eq!(b.count_ones(), 10_000);
    }

    #[test]
    fn segment_roundtrips_unaligned_ranges() {
        // Ranges deliberately straddle word boundaries.
        for range in [0usize..300, 70..200, 63..65, 64..128, 5..5, 299..300] {
            let idxs: Vec<u32> = (range.start as u32..range.end as u32).step_by(3).collect();
            let seg = BitmapSegment::from_indices(range.clone(), &idxs);
            assert_eq!(seg.count_ones(), idxs.len(), "range {range:?}");
            assert_eq!(seg.to_indices(), idxs, "range {range:?}");
            assert_eq!(
                seg.iter_ones().map(|i| i as u32).collect::<Vec<_>>(),
                idxs,
                "range {range:?}"
            );
            let mut whole = Bitmap::new(300);
            seg.splice_into(&mut whole);
            let want: Vec<usize> = idxs.iter().map(|&i| i as usize).collect();
            assert_eq!(
                whole.iter_ones().collect::<Vec<_>>(),
                want,
                "range {range:?}"
            );
        }
    }

    #[test]
    fn segments_splice_disjointly_like_one_bitmap() {
        // Three contiguous segments sharing boundary words must OR into the
        // same bitmap a single owner would have produced.
        let idxs: Vec<u32> = (0..200).step_by(7).collect();
        let want = Bitmap::from_indices(200, &idxs);
        let mut got = Bitmap::new(200);
        for range in [0usize..70, 70..129, 129..200] {
            let local: Vec<u32> = idxs
                .iter()
                .copied()
                .filter(|&i| range.contains(&(i as usize)))
                .collect();
            BitmapSegment::from_indices(range, &local).splice_into(&mut got);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn segment_word_cost_tracks_range_not_universe() {
        let seg = BitmapSegment::new(1000..1100);
        assert_eq!(seg.num_words(), 2);
        assert!(seg.is_empty() || seg.len() == 100);
    }

    #[test]
    #[should_panic(expected = "exceeds bitmap")]
    fn segment_splice_rejects_oversized_target_range() {
        let seg = BitmapSegment::new(100..200);
        let mut small = Bitmap::new(150);
        seg.splice_into(&mut small);
    }

    #[test]
    fn snapshot_matches() {
        let ab = AtomicBitmap::new(77);
        ab.set(3);
        ab.set(76);
        let b = ab.snapshot();
        assert!(b.get(3) && b.get(76));
        assert_eq!(b.count_ones(), 2);
        let owned = ab.into_bitmap();
        assert_eq!(owned, b);
    }
}
