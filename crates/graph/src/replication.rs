//! Vertex replication analysis (§II.D, Figure 3).
//!
//! When the edge set is partitioned, a vertex is *replicated* into every
//! partition that holds an edge incident to it. For partitioning by
//! destination with a CSR (source-indexed) per-partition layout, vertex `u`
//! appears in partition `p` iff `u` has at least one out-edge whose
//! destination's home is `p`. The **replication factor**
//! `r(p) = (Σ_p #distinct sources in p) / |V|` multiplies the vertex-array
//! storage of the pruned CSR layout and the control work of traversal
//! (§II.F). Its worst case is `|E| / |V|` (one partition per vertex).

use crate::edge_list::EdgeList;
use crate::partition::{BalanceMode, PartitionBy, PartitionSet};
use crate::types::VertexId;

/// Counts, per partition, the number of distinct vertices that have at least
/// one incident edge assigned to that partition (the pruned-CSR "stored
/// vertex" count), counting the indexed endpoint.
///
/// For [`PartitionBy::Destination`] the indexed endpoint is the **source**
/// (forward traversal within the partition); for [`PartitionBy::Source`] it
/// is the destination.
pub fn stored_vertices_per_partition(el: &EdgeList, set: &PartitionSet) -> Vec<usize> {
    let p = set.num_partitions();
    let n = el.num_vertices();
    // stamp[u] = last partition id (plus one) that counted u; partitions are
    // processed one at a time so a single array suffices.
    let mut stamp = vec![0u32; n];
    let mut counts = vec![0usize; p];

    // Bucket edge endpoints by home partition first so each partition's
    // pass sees its own edges contiguously.
    let srcs = el.srcs();
    let dsts = el.dsts();
    let m = el.num_edges();
    let mut bucket_counts = vec![0usize; p + 1];
    for e in 0..m {
        bucket_counts[set.edge_home(srcs[e], dsts[e]) + 1] += 1;
    }
    for i in 0..p {
        bucket_counts[i + 1] += bucket_counts[i];
    }
    let offsets = bucket_counts.clone();
    // The endpoint that the per-partition index stores explicitly.
    let mut indexed = vec![0 as VertexId; m];
    for e in 0..m {
        let h = set.edge_home(srcs[e], dsts[e]);
        indexed[bucket_counts[h]] = match set.by() {
            PartitionBy::Destination => srcs[e],
            PartitionBy::Source => dsts[e],
        };
        bucket_counts[h] += 1;
    }

    for part in 0..p {
        let marker = part as u32 + 1;
        for &u in &indexed[offsets[part]..offsets[part + 1]] {
            if stamp[u as usize] != marker {
                stamp[u as usize] = marker;
                counts[part] += 1;
            }
        }
    }
    counts
}

/// The replication factor `r(p)` of §II.D: average number of partitions in
/// which a vertex is stored. Returns 0.0 for an empty vertex set.
pub fn replication_factor(el: &EdgeList, set: &PartitionSet) -> f64 {
    if el.num_vertices() == 0 {
        return 0.0;
    }
    let total: usize = stored_vertices_per_partition(el, set).iter().sum();
    total as f64 / el.num_vertices() as f64
}

/// Worst-case replication factor `|E| / |V|` (every vertex in a distinct
/// partition, §II.D).
pub fn worst_case_replication_factor(el: &EdgeList) -> f64 {
    if el.num_vertices() == 0 {
        0.0
    } else {
        el.num_edges() as f64 / el.num_vertices() as f64
    }
}

/// Computes `r(p)` for each requested partition count, using edge-balanced
/// partitioning by destination (the configuration of Figure 3).
pub fn replication_sweep(el: &EdgeList, partition_counts: &[usize]) -> Vec<(usize, f64)> {
    let in_deg = el.in_degrees();
    partition_counts
        .iter()
        .map(|&p| {
            let set = PartitionSet::new(&in_deg, p, PartitionBy::Destination, BalanceMode::Edges);
            (p, replication_factor(el, &set))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_graph() -> EdgeList {
        EdgeList::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (2, 4),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 0),
                (5, 1),
                (5, 2),
                (5, 3),
                (5, 4),
            ],
        )
    }

    #[test]
    fn figure1_value() {
        // §II.D: "the average replication factor is 7/6 for the partitioned
        // CSR layout" with 2 partitions.
        let el = figure1_graph();
        let set = PartitionSet::edge_balanced(&el.in_degrees(), 2, PartitionBy::Destination);
        let r = replication_factor(&el, &set);
        assert!((r - 7.0 / 6.0).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn one_partition_counts_sources_once() {
        let el = figure1_graph();
        let set = PartitionSet::whole(6, PartitionBy::Destination);
        // Vertices with out-edges: 0, 2, 3, 4, 5 (vertex 1 has none).
        assert_eq!(stored_vertices_per_partition(&el, &set), vec![5]);
    }

    #[test]
    fn monotone_in_partition_count() {
        // r(p) is non-decreasing in p for nested range partitions in
        // practice; verify on the example graph.
        let el = figure1_graph();
        let sweep = replication_sweep(&el, &[1, 2, 3, 6]);
        for w in sweep.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12, "{sweep:?}");
        }
    }

    #[test]
    fn worst_case_bound_holds() {
        let el = figure1_graph();
        let wc = worst_case_replication_factor(&el);
        assert!((wc - 14.0 / 6.0).abs() < 1e-12);
        // One partition per vertex reaches at most the worst case.
        let set = PartitionSet::vertex_balanced(6, 6, PartitionBy::Destination);
        assert!(replication_factor(&el, &set) <= wc + 1e-12);
    }

    #[test]
    fn by_source_counts_destinations() {
        // Under partitioning-by-source the per-partition index stores
        // destinations (a CSC layout per partition).
        let el = EdgeList::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 3)]);
        let set = PartitionSet::vertex_balanced(4, 2, PartitionBy::Source);
        // All 4 edges have src in partition 0 (vertices 0..2): distinct dsts
        // = {1, 2, 3} = 3. Partition 1 has no edges.
        assert_eq!(stored_vertices_per_partition(&el, &set), vec![3, 0]);
    }

    #[test]
    fn agrees_with_partitioned_csr() {
        // The analytic count must match what PartitionedCsr actually builds.
        let el = figure1_graph();
        for p in [1usize, 2, 3, 4, 6] {
            let set = PartitionSet::edge_balanced(&el.in_degrees(), p, PartitionBy::Destination);
            let counted: usize = stored_vertices_per_partition(&el, &set).iter().sum();
            let built = crate::csr::PartitionedCsr::new(&el, &set).total_stored_vertices();
            assert_eq!(counted, built, "P = {p}");
        }
    }
}
