//! # gg-baselines — comparator engines for the Figure 9/10 evaluation
//!
//! Reimplementations of the *traversal policies* of the three systems the
//! paper compares against, behind the same [`Engine`](gg_core::Engine)
//! trait as GraphGrind-v2, so every algorithm in `gg-algorithms` runs
//! unmodified on all four:
//!
//! * [`ligra::Ligra`] — Shun & Blelloch's two-way sparse/dense switch over
//!   an unpartitioned CSR + CSC pair. Dense direction is the
//!   *programmer-declared* preference (Table II); dense backward chunks
//!   vertices evenly, which is exactly the load imbalance §IV.A attributes
//!   Ligra's losses to.
//! * [`polymer::Polymer`] — Zhang et al.'s NUMA-aware Ligra derivative:
//!   4 partitions (one per NUMA domain), *unpruned* per-partition CSR
//!   (§II.E: "Polymer does not prune zero-degree vertices"), edge-balanced
//!   backward ranges.
//! * [`graphgrind1::GraphGrind1`] — the authors' previous system: 4
//!   partitions, pruned partitioned CSR, vertex-/edge-oriented load
//!   balancing, still a two-way density classification and a
//!   programmer-declared direction.
//!
//! What is *not* reproduced: physical NUMA page placement (the test
//! machine is treated as UMA), so Polymer's NUMA-locality advantage over
//! Ligra does not materialise here — see EXPERIMENTS.md. The policy
//! differences (partitioning, pruning, load balancing, direction choice)
//! are faithfully implemented, and those are what GraphGrind-v2's speedups
//! come from.

pub mod common;
pub mod graphgrind1;
pub mod ligra;
pub mod polymer;

pub use graphgrind1::GraphGrind1;
pub use ligra::Ligra;
pub use polymer::Polymer;
