//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of rayon's API the workspace uses — [`ThreadPool`],
//! [`ThreadPoolBuilder`], [`current_num_threads`] and the parallel-iterator
//! prelude over index ranges and slices. Parallelism is real: each drive of
//! an iterator fans contiguous chunks out over `std::thread::scope` workers,
//! honouring the installed pool's thread count. What it does *not* do is
//! work-stealing or persistent worker threads; for the test- and
//! reproduction-scale workloads here, chunked scoped threads are equivalent.

use std::cell::Cell;

thread_local! {
    static CURRENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads of the innermost installed pool (or the machine size).
pub fn current_num_threads() -> usize {
    CURRENT_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
}

/// Error type returned by [`ThreadPoolBuilder::build`]. Construction cannot
/// actually fail in this shim, but the type keeps call sites source-compatible.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 means "machine-sized", like rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Accepted for compatibility; worker threads are per-operation scoped
    /// threads here, so the name function is not retained.
    pub fn thread_name<F: FnMut(usize) -> String>(self, _f: F) -> Self {
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.num_threads {
            Some(0) | None => default_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { threads })
    }
}

/// A fixed-width pool. Operations inside [`install`](ThreadPool::install)
/// see this pool's width via [`current_num_threads`].
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool installed as the current parallelism context.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        let prev = CURRENT_THREADS.with(|c| c.replace(Some(self.threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// The configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Splits `0..len` into at most `current_num_threads()` contiguous chunks and
/// runs `work` on each chunk in a scoped thread, returning per-chunk results
/// in chunk order.
fn drive<R: Send>(len: usize, work: &(dyn Fn(std::ops::Range<usize>) -> R + Sync)) -> Vec<R> {
    if len == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().clamp(1, len);
    if threads == 1 {
        return vec![work(0..len)];
    }
    let inherited = CURRENT_THREADS.with(|c| c.get());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let start = len * t / threads;
                let end = len * (t + 1) / threads;
                scope.spawn(move || {
                    CURRENT_THREADS.with(|c| c.set(inherited));
                    work(start..end)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// Parallel iterators. Random-access ("indexed") sources only, which covers
/// ranges, slices and maps thereof.
pub mod iter {
    use super::drive;

    /// A random-access description of a parallel sequence.
    pub trait IndexedSource: Sync + Sized {
        /// Element type.
        type Item: Send;
        /// Sequence length.
        fn seq_len(&self) -> usize;
        /// Element at position `i` (`i < seq_len()`).
        fn seq_get(&self, i: usize) -> Self::Item;
    }

    /// The user-facing parallel-iterator operations, blanket-implemented for
    /// every indexed source.
    pub trait ParallelIterator: IndexedSource {
        /// Applies `f` to every element, in parallel.
        fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
            drive(self.seq_len(), &|range| {
                for i in range {
                    f(self.seq_get(i));
                }
            });
        }

        /// Lazily maps every element through `f`.
        fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
            Map { base: self, f }
        }

        /// Sums all elements.
        fn sum<S>(self) -> S
        where
            S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
        {
            drive(self.seq_len(), &|range| {
                range.map(|i| self.seq_get(i)).sum::<S>()
            })
            .into_iter()
            .sum()
        }

        /// Collects all elements in sequence order.
        fn collect<C: FromParallel<Self::Item>>(self) -> C {
            let chunks = drive(self.seq_len(), &|range| {
                range.map(|i| self.seq_get(i)).collect::<Vec<_>>()
            });
            C::from_chunks(chunks)
        }

        /// Total number of elements.
        fn len(&self) -> usize {
            self.seq_len()
        }

        /// Whether the sequence is empty.
        fn is_empty(&self) -> bool {
            self.seq_len() == 0
        }
    }

    impl<T: IndexedSource> ParallelIterator for T {}

    /// Collection types buildable from ordered parallel chunks.
    pub trait FromParallel<T> {
        /// Concatenates the per-chunk outputs (already in order).
        fn from_chunks(chunks: Vec<Vec<T>>) -> Self;
    }

    impl<T> FromParallel<T> for Vec<T> {
        fn from_chunks(chunks: Vec<Vec<T>>) -> Self {
            let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
            for c in chunks {
                out.extend(c);
            }
            out
        }
    }

    /// Parallel iterator over an integer range.
    pub struct ParRange<T> {
        pub(crate) start: T,
        pub(crate) len: usize,
    }

    macro_rules! par_range_impl {
        ($($t:ty),*) => {$(
            impl IndexedSource for ParRange<$t> {
                type Item = $t;
                fn seq_len(&self) -> usize {
                    self.len
                }
                fn seq_get(&self, i: usize) -> $t {
                    self.start + i as $t
                }
            }
        )*};
    }

    par_range_impl!(usize, u32, u64, i32, i64);

    /// Parallel iterator over a slice (by reference).
    pub struct ParSlice<'a, T> {
        pub(crate) slice: &'a [T],
    }

    impl<'a, T: Sync> IndexedSource for ParSlice<'a, T> {
        type Item = &'a T;
        fn seq_len(&self) -> usize {
            self.slice.len()
        }
        fn seq_get(&self, i: usize) -> &'a T {
            &self.slice[i]
        }
    }

    /// Lazily mapped parallel iterator.
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, R, F> IndexedSource for Map<I, F>
    where
        I: IndexedSource,
        R: Send,
        F: Fn(I::Item) -> R + Sync,
    {
        type Item = R;
        fn seq_len(&self) -> usize {
            self.base.seq_len()
        }
        fn seq_get(&self, i: usize) -> R {
            (self.f)(self.base.seq_get(i))
        }
    }

    /// Conversion into a parallel iterator (by value).
    pub trait IntoParallelIterator {
        /// The resulting iterator type.
        type Iter: ParallelIterator;
        /// Converts `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    macro_rules! into_par_range {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Iter = ParRange<$t>;
                fn into_par_iter(self) -> ParRange<$t> {
                    let len = if self.end > self.start {
                        (self.end - self.start) as usize
                    } else {
                        0
                    };
                    ParRange { start: self.start, len }
                }
            }
        )*};
    }

    into_par_range!(usize, u32, u64, i32, i64);

    /// Conversion into a parallel iterator over references.
    pub trait IntoParallelRefIterator<'a> {
        /// Element reference type.
        type Iter: ParallelIterator;
        /// Borrows `self` as a parallel iterator.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = ParSlice<'a, T>;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = ParSlice<'a, T>;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { slice: self }
        }
    }
}

/// `use rayon::prelude::*;`
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn install_scopes_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(super::current_num_threads), 3);
        // Restored afterwards.
        let outer = super::current_num_threads();
        assert!(outer >= 1);
    }

    #[test]
    fn for_each_covers_range() {
        let hits = AtomicUsize::new(0);
        (0..1000usize).into_par_iter().for_each(|i| {
            hits.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000 * 1001 / 2);
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 100);
        assert_eq!(v[40], 80);
    }

    #[test]
    fn slice_par_iter_and_sum() {
        let data = vec![1u64, 2, 3, 4];
        let total = AtomicUsize::new(0);
        data.par_iter().for_each(|&x| {
            total.fetch_add(x as usize, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 10);
        let s: u64 = (0..10u64).into_par_iter().map(|i| i).sum();
        assert_eq!(s, 45);
    }

    #[test]
    fn nested_install_inherits_in_workers() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        pool.install(|| {
            let seen = AtomicUsize::new(0);
            (0..4usize).into_par_iter().for_each(|_| {
                seen.fetch_max(super::current_num_threads(), Ordering::Relaxed);
            });
            assert_eq!(seen.load(Ordering::Relaxed), 2);
        });
    }
}
