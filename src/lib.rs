//! # graphgrind — umbrella crate for the GraphGrind-rs workspace
//!
//! A from-scratch Rust reproduction of *"Accelerating Graph Analytics by
//! Utilising the Memory Locality of Graph Partitioning"* (Sun,
//! Vandierendonck & Nikolopoulos, ICPP 2017). Re-exports every workspace
//! crate under one roof; see the README for a guided tour.
//!
//! ```
//! use graphgrind::core::{Config, Engine, GraphGrind2};
//! use graphgrind::graph::generators;
//!
//! let el = generators::erdos_renyi(200, 2000, 7);
//! let engine = GraphGrind2::new(&el, Config::for_tests());
//! let ranks = graphgrind::algorithms::pagerank(&engine, 10);
//! assert_eq!(ranks.len(), 200);
//! // The engine decided layouts on its own; PR is all-dense:
//! let (_sparse, _medium, dense) = engine.kernel_counts().snapshot();
//! assert_eq!(dense, 10);
//! ```

/// The eight evaluated algorithms (Table II) plus extensions.
pub use gg_algorithms as algorithms;
/// Ligra / Polymer / GraphGrind-v1 comparator engines (Figure 9).
pub use gg_baselines as baselines;
/// The experiment harness: datasets, runner, table printer.
pub use gg_bench as bench;
/// The GraphGrind-v2 engine: composite store + Algorithm 2.
pub use gg_core as core;
/// Graph layouts, partitioning, generators and I/O.
pub use gg_graph as graph;
/// Reuse-distance and cache simulation (Figures 2 & 8).
pub use gg_memsim as memsim;
/// Thread pool, simulated NUMA, atomic cells.
pub use gg_runtime as runtime;
