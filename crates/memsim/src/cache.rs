//! Set-associative LRU cache simulation.
//!
//! Substitutes for the hardware LLC miss counters behind Figure 8. The
//! default configuration matches the paper's evaluation machine (Intel Xeon
//! E7-4860 v2): a 30 MiB, 20-way last-level cache with 64-byte lines.

use crate::trace::{AddressTrace, LINE_BYTES};

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// An LLC approximating the paper's Xeon E7-4860 v2 (30 MiB, 20-way):
    /// modeled as 32 MiB, 16-way so the set count is a power of two (real
    /// hardware uses hashed set indexing; capacity is what matters here).
    pub fn xeon_e7_llc() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024 * 1024,
            ways: 16,
            line_bytes: LINE_BYTES,
        }
    }

    /// A small L2-like cache: 256 KiB, 8-way.
    pub fn l2_256k() -> Self {
        CacheConfig {
            size_bytes: 256 * 1024,
            ways: 8,
            line_bytes: LINE_BYTES,
        }
    }

    /// An LLC sized so that `data_bytes / size == ratio` (rounded to a
    /// power of two, min 64 KiB, 16-way). The paper's Twitter-vs-30 MiB
    /// configuration has a footprint:LLC ratio around 10; scaled-down
    /// reproduction graphs keep the same ratio so the partition-count
    /// effects appear at the same relative positions.
    pub fn scaled_llc(data_bytes: u64, ratio: u64) -> Self {
        assert!(ratio > 0);
        let target = (data_bytes / ratio).max(64 * 1024);
        let size = target.next_power_of_two();
        CacheConfig {
            size_bytes: size,
            ways: 16,
            line_bytes: LINE_BYTES,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        let sets = lines as usize / self.ways;
        assert!(sets > 0, "cache too small for its associativity");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]` (0 for an untouched cache).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A single-level set-associative LRU cache over cache-line numbers, with
/// an optional next-line prefetcher.
///
/// Real CPUs prefetch sequential streams (the edge arrays of a COO/CSR
/// traversal), so a model without prefetching over-charges the streaming
/// component of graph traversal. With `prefetch_next > 0`, every demand
/// miss also installs the following `prefetch_next` lines (without
/// counting them as accesses), approximating an adjacent-line/stream
/// prefetcher.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    set_mask: u64,
    /// Per set: resident line numbers, most recently used first.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
    prefetch_next: usize,
}

impl Cache {
    /// Creates an empty cache with the given geometry (no prefetcher).
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        Cache {
            config,
            set_mask: num_sets as u64 - 1,
            sets: vec![Vec::with_capacity(config.ways); num_sets],
            stats: CacheStats::default(),
            prefetch_next: 0,
        }
    }

    /// Creates an empty cache that prefetches `lines` sequential lines on
    /// every demand miss.
    pub fn with_prefetcher(config: CacheConfig, lines: usize) -> Self {
        let mut c = Self::new(config);
        c.prefetch_next = lines;
        c
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Installs `line` at the MRU position of its set without touching the
    /// statistics (the prefetch path).
    fn install(&mut self, line: u64) {
        let ways = self.config.ways;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.insert(0, l);
        } else {
            if set.len() == ways {
                set.pop();
            }
            set.insert(0, line);
        }
    }

    /// References one cache line; returns `true` on hit. LRU replacement
    /// within the line's set; misses trigger the prefetcher when enabled.
    pub fn access_line(&mut self, line: u64) -> bool {
        self.stats.accesses += 1;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            // Move to MRU position.
            let l = set.remove(pos);
            set.insert(0, l);
            true
        } else {
            self.stats.misses += 1;
            if set.len() == self.config.ways {
                set.pop();
            }
            set.insert(0, line);
            for i in 1..=self.prefetch_next {
                self.install(line + i as u64);
            }
            false
        }
    }

    /// References a byte address.
    pub fn access(&mut self, byte_addr: u64) -> bool {
        self.access_line(byte_addr / self.config.line_bytes)
    }

    /// Replays an entire trace; returns the stats delta for this replay.
    pub fn replay(&mut self, trace: &AddressTrace) -> CacheStats {
        let before = self.stats;
        for &line in trace.lines() {
            self.access_line(line);
        }
        CacheStats {
            accesses: self.stats.accesses - before.accesses,
            misses: self.stats.misses - before.misses,
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Empties the cache and zeroes statistics.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }
}

/// A simple inclusive multi-level hierarchy: an access probes each level in
/// order until it hits; a miss at every level counts as a memory access.
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    levels: Vec<Cache>,
}

impl CacheHierarchy {
    /// Builds a hierarchy from inner-most to outer-most level.
    pub fn new(configs: &[CacheConfig]) -> Self {
        assert!(!configs.is_empty());
        CacheHierarchy {
            levels: configs.iter().map(|&c| Cache::new(c)).collect(),
        }
    }

    /// References a line; returns the index of the level that hit, or
    /// `None` for a full miss to memory.
    pub fn access_line(&mut self, line: u64) -> Option<usize> {
        let mut hit_level = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            if level.access_line(line) {
                hit_level = Some(i);
                break;
            }
        }
        hit_level
    }

    /// Per-level statistics.
    pub fn stats(&self) -> Vec<CacheStats> {
        self.levels.iter().map(|l| l.stats()).collect()
    }
}

impl crate::trace::AccessSink for Cache {
    #[inline]
    fn access_line(&mut self, line: u64) {
        Cache::access_line(self, line);
    }
}

/// A naive fully associative LRU reference model for validating [`Cache`]
/// with `ways == capacity` configurations.
pub fn naive_fully_associative_misses(trace: &AddressTrace, capacity_lines: usize) -> u64 {
    let mut stack: Vec<u64> = Vec::new();
    let mut misses = 0;
    for &line in trace.lines() {
        match stack.iter().position(|&l| l == line) {
            Some(pos) => {
                let l = stack.remove(pos);
                stack.insert(0, l);
            }
            None => {
                misses += 1;
                if stack.len() == capacity_lines {
                    stack.pop();
                }
                stack.insert(0, line);
            }
        }
    }
    misses
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn trace_of(lines: &[u64]) -> AddressTrace {
        let mut t = AddressTrace::new();
        for &l in lines {
            t.record_line(l);
        }
        t
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::xeon_e7_llc();
        assert_eq!(c.num_sets(), 32 * 1024 * 1024 / 64 / 16);
        assert!(c.num_sets().is_power_of_two());
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 8 * 64,
            ways: 2,
            line_bytes: 64,
        });
        assert!(!c.access_line(5));
        assert!(c.access_line(5));
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().accesses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways: access a, b, a, c -> c evicts b, so b misses again.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 2 * 64,
            ways: 2,
            line_bytes: 64,
        });
        assert_eq!(c.config().num_sets(), 1);
        c.access_line(0); // miss, set = [0]
        c.access_line(1); // miss, set = [1, 0]
        assert!(c.access_line(0)); // hit, set = [0, 1]
        assert!(!c.access_line(2)); // miss, evicts LRU line 1, set = [2, 0]
        assert!(!c.access_line(1)); // miss (was evicted), set = [1, 2]
        assert!(!c.access_line(0)); // miss (evicted by line 1's refill)
        assert!(c.access_line(1)); // still resident
    }

    #[test]
    fn single_set_matches_naive_lru() {
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..10 {
            let lines: Vec<u64> = (0..500).map(|_| rng.gen_range(0..16u64) * 8).collect();
            // Map all lines to one set by making capacity = ways.
            let ways = rng.gen_range(1..8usize);
            let t = trace_of(&lines);
            let naive = naive_fully_associative_misses(&t, ways);
            let mut c = Cache::new(CacheConfig {
                size_bytes: ways as u64 * 64,
                ways,
                line_bytes: 64,
            });
            let stats = c.replay(&t);
            assert_eq!(stats.misses, naive, "ways = {ways}");
        }
    }

    #[test]
    fn streaming_misses_every_line() {
        let lines: Vec<u64> = (0..1000).collect();
        let mut c = Cache::new(CacheConfig::l2_256k());
        let stats = c.replay(&trace_of(&lines));
        assert_eq!(stats.misses, 1000);
    }

    #[test]
    fn small_working_set_fits() {
        let mut lines = Vec::new();
        for _ in 0..100 {
            lines.extend(0..32u64);
        }
        let mut c = Cache::new(CacheConfig::l2_256k());
        let stats = c.replay(&trace_of(&lines));
        // Only compulsory misses.
        assert_eq!(stats.misses, 32);
        assert!(stats.miss_ratio() < 0.02);
    }

    #[test]
    fn hierarchy_probes_in_order() {
        let mut h = CacheHierarchy::new(&[
            CacheConfig {
                size_bytes: 2 * 64,
                ways: 2,
                line_bytes: 64,
            },
            CacheConfig {
                size_bytes: 8 * 64,
                ways: 8,
                line_bytes: 64,
            },
        ]);
        assert_eq!(h.access_line(1), None); // cold
        assert_eq!(h.access_line(1), Some(0)); // L1 hit
        h.access_line(2);
        h.access_line(3); // evicts 1 from L1
        assert_eq!(h.access_line(1), Some(1)); // L2 still has it
    }

    #[test]
    fn prefetcher_hides_streaming_misses() {
        // Sequential scan: without prefetching every line misses; with a
        // 2-line prefetcher only every third line does.
        let lines: Vec<u64> = (0..999).collect();
        let cfg = CacheConfig::l2_256k();
        let mut plain = Cache::new(cfg);
        plain.replay(&trace_of(&lines));
        assert_eq!(plain.stats().misses, 999);
        let mut pf = Cache::with_prefetcher(cfg, 2);
        pf.replay(&trace_of(&lines));
        assert_eq!(pf.stats().misses, 333);
        // Accesses are demand accesses only in both cases.
        assert_eq!(pf.stats().accesses, 999);
    }

    #[test]
    fn prefetcher_does_not_help_random_far_accesses() {
        // Strided far apart: prefetched lines are never used.
        let lines: Vec<u64> = (0..500).map(|i| i * 1000).collect();
        let mut pf = Cache::with_prefetcher(CacheConfig::l2_256k(), 2);
        pf.replay(&trace_of(&lines));
        assert_eq!(pf.stats().misses, 500);
    }

    #[test]
    fn reset_clears() {
        let mut c = Cache::new(CacheConfig::l2_256k());
        c.access_line(1);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access_line(1));
    }
}
