//! Frontier representations and density classification.
//!
//! A frontier is the set of active vertices of one iteration (§II.A). It
//! caches two quantities consulted by the Algorithm 2 decision: the active
//! vertex count `|F|` and the active out-degree sum `Σ_{v∈F} deg_out(v)`,
//! so classification is O(1) at edge-map time.
//!
//! Sparse frontiers store a sorted vertex list; dense frontiers store a
//! bitmap. Either representation can be materialised from the other; the
//! cached counts are representation-independent.

use gg_graph::bitmap::{AtomicBitmap, Bitmap};
use gg_graph::types::VertexId;
use gg_runtime::pool::Pool;

/// Physical representation of the active set.
#[derive(Clone, Debug)]
pub enum FrontierData {
    /// Sorted list of active vertex ids.
    Sparse(Vec<VertexId>),
    /// One bit per vertex.
    Dense(Bitmap),
}

/// A set of active vertices with cached density statistics.
///
/// ```
/// use gg_core::frontier::Frontier;
///
/// let out_degrees = [2u32, 0, 5, 1];
/// let f = Frontier::from_sparse(vec![2, 0], 4, &out_degrees);
/// assert_eq!(f.len(), 2);
/// assert_eq!(f.degree_sum(), 7);
/// assert_eq!(f.density_metric(), 9); // |F| + Σ deg_out(F), Algorithm 2
/// assert!(f.contains(2) && !f.contains(1));
/// ```
#[derive(Clone, Debug)]
pub struct Frontier {
    n: usize,
    data: FrontierData,
    count: usize,
    degree_sum: u64,
}

impl Frontier {
    /// The empty frontier over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Frontier {
            n,
            data: FrontierData::Sparse(Vec::new()),
            count: 0,
            degree_sum: 0,
        }
    }

    /// A single-vertex frontier (the classic BFS/BC/BF starting point).
    pub fn single(v: VertexId, n: usize, out_degrees: &[u32]) -> Self {
        Frontier {
            n,
            data: FrontierData::Sparse(vec![v]),
            count: 1,
            degree_sum: out_degrees[v as usize] as u64,
        }
    }

    /// The all-vertices frontier (`m` = total edge count, so the cached
    /// degree sum needs no scan).
    pub fn all(n: usize, m: u64) -> Self {
        Frontier {
            n,
            data: FrontierData::Dense(Bitmap::full(n)),
            count: n,
            degree_sum: m,
        }
    }

    /// Builds a sparse frontier from a vertex list (sorted and deduped for
    /// deterministic iteration order).
    pub fn from_sparse(mut vertices: Vec<VertexId>, n: usize, out_degrees: &[u32]) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        let count = vertices.len();
        let degree_sum = vertices
            .iter()
            .map(|&v| out_degrees[v as usize] as u64)
            .sum();
        Frontier {
            n,
            data: FrontierData::Sparse(vertices),
            count,
            degree_sum,
        }
    }

    /// Builds a dense frontier from a bitmap, computing the statistics in
    /// parallel on `pool`.
    pub fn from_dense(bitmap: Bitmap, out_degrees: &[u32], pool: &Pool) -> Self {
        let n = bitmap.len();
        let words = bitmap.words();
        let tasks = (pool.threads() * 4).min(words.len().max(1));
        let partials: Vec<(usize, u64)> = pool.map_indices(tasks, |t| {
            let lo = words.len() * t / tasks;
            let hi = words.len() * (t + 1) / tasks;
            let mut count = 0usize;
            let mut sum = 0u64;
            for (wi, &w) in words[lo..hi].iter().enumerate() {
                let mut bits = w;
                count += w.count_ones() as usize;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    sum += out_degrees[(lo + wi) * 64 + b] as u64;
                }
            }
            (count, sum)
        });
        let (count, degree_sum) = partials
            .into_iter()
            .fold((0, 0), |(c, s), (pc, ps)| (c + pc, s + ps));
        Frontier {
            n,
            data: FrontierData::Dense(bitmap),
            count,
            degree_sum,
        }
    }

    /// Builds a dense frontier from an atomic bitmap produced by a
    /// traversal kernel.
    pub fn from_atomic(bitmap: AtomicBitmap, out_degrees: &[u32], pool: &Pool) -> Self {
        Self::from_dense(bitmap.into_bitmap(), out_degrees, pool)
    }

    /// Number of vertices in the graph (`n`), not the active count.
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of active vertices `|F|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no vertex is active (the usual termination condition).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Cached `Σ_{v∈F} deg_out(v)`.
    #[inline]
    pub fn degree_sum(&self) -> u64 {
        self.degree_sum
    }

    /// The Algorithm 2 density metric `|F| + Σ deg_out(F)`.
    #[inline]
    pub fn density_metric(&self) -> u64 {
        self.count as u64 + self.degree_sum
    }

    /// The underlying representation.
    #[inline]
    pub fn data(&self) -> &FrontierData {
        &self.data
    }

    /// True if `v` is active (O(1) dense, O(log |F|) sparse).
    pub fn contains(&self, v: VertexId) -> bool {
        match &self.data {
            FrontierData::Sparse(list) => list.binary_search(&v).is_ok(),
            FrontierData::Dense(b) => b.get(v as usize),
        }
    }

    /// Active count and out-degree sum restricted to `range` — the
    /// per-partition analogue of ([`len`](Self::len),
    /// [`degree_sum`](Self::degree_sum)), consulted by the partitioned
    /// executor's per-partition kernel decision. O(|F ∩ range|) for sparse
    /// frontiers (after an O(log |F|) bound search), O(|range| / 64) words
    /// scanned for dense ones.
    pub fn range_stats(
        &self,
        range: std::ops::Range<VertexId>,
        out_degrees: &[u32],
    ) -> (usize, u64) {
        match &self.data {
            FrontierData::Sparse(list) => {
                let lo = list.partition_point(|&v| v < range.start);
                let hi = list.partition_point(|&v| v < range.end);
                let sum = list[lo..hi]
                    .iter()
                    .map(|&v| out_degrees[v as usize] as u64)
                    .sum();
                (hi - lo, sum)
            }
            FrontierData::Dense(b) => {
                let mut count = 0usize;
                let mut sum = 0u64;
                b.for_each_one_in_range(range.start as usize..range.end as usize, |v| {
                    count += 1;
                    sum += out_degrees[v] as u64;
                });
                (count, sum)
            }
        }
    }

    /// Active vertices as a sorted list (materialises for dense input).
    pub fn to_vertex_list(&self) -> Vec<VertexId> {
        match &self.data {
            FrontierData::Sparse(list) => list.clone(),
            FrontierData::Dense(b) => b.iter_ones().map(|i| i as VertexId).collect(),
        }
    }

    /// Active vertices as a bitmap (materialises for sparse input).
    pub fn to_bitmap(&self) -> Bitmap {
        match &self.data {
            FrontierData::Sparse(list) => Bitmap::from_indices(self.n, list),
            FrontierData::Dense(b) => b.clone(),
        }
    }

    /// Iterates active vertices in ascending order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = VertexId> + '_> {
        match &self.data {
            FrontierData::Sparse(list) => Box::new(list.iter().copied()),
            FrontierData::Dense(b) => Box::new(b.iter_ones().map(|i| i as VertexId)),
        }
    }

    /// True when physically sparse (vertex list).
    pub fn is_sparse_repr(&self) -> bool {
        matches!(self.data, FrontierData::Sparse(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Pool {
        Pool::new(2)
    }

    #[test]
    fn empty_and_all() {
        let f = Frontier::empty(10);
        assert!(f.is_empty());
        assert_eq!(f.density_metric(), 0);

        let f = Frontier::all(10, 55);
        assert_eq!(f.len(), 10);
        assert_eq!(f.degree_sum(), 55);
        assert_eq!(f.density_metric(), 65);
        assert!(f.contains(9));
    }

    #[test]
    fn sparse_sorts_and_dedups() {
        let deg = vec![1u32, 2, 3, 4, 5];
        let f = Frontier::from_sparse(vec![3, 1, 3, 0], 5, &deg);
        assert_eq!(f.len(), 3);
        assert_eq!(f.to_vertex_list(), vec![0, 1, 3]);
        assert_eq!(f.degree_sum(), 1 + 2 + 4);
    }

    #[test]
    fn dense_statistics_match_sparse() {
        let deg: Vec<u32> = (0..200).map(|i| i % 7).collect();
        let actives: Vec<u32> = (0..200).step_by(3).collect();
        let sparse = Frontier::from_sparse(actives.clone(), 200, &deg);
        let dense = Frontier::from_dense(Bitmap::from_indices(200, &actives), &deg, &pool());
        assert_eq!(sparse.len(), dense.len());
        assert_eq!(sparse.degree_sum(), dense.degree_sum());
        assert_eq!(sparse.to_vertex_list(), dense.to_vertex_list());
    }

    #[test]
    fn conversions_roundtrip() {
        let deg = vec![1u32; 70];
        let f = Frontier::from_sparse(vec![0, 64, 69], 70, &deg);
        let b = f.to_bitmap();
        assert!(b.get(64));
        let back = Frontier::from_dense(b, &deg, &pool());
        assert_eq!(back.to_vertex_list(), vec![0, 64, 69]);
        assert!(back.contains(69));
        assert!(!back.contains(1));
    }

    #[test]
    fn single_vertex() {
        let deg = vec![4u32, 7, 9];
        let f = Frontier::single(1, 3, &deg);
        assert_eq!(f.len(), 1);
        assert_eq!(f.degree_sum(), 7);
        assert!(f.contains(1));
        assert!(!f.contains(0));
    }

    #[test]
    fn range_stats_agree_between_representations() {
        let deg: Vec<u32> = (0..300).map(|i| (i % 11) as u32).collect();
        let actives: Vec<u32> = (0..300).step_by(3).collect();
        let sparse = Frontier::from_sparse(actives.clone(), 300, &deg);
        let dense = Frontier::from_dense(Bitmap::from_indices(300, &actives), &deg, &pool());
        for range in [0u32..300, 0..64, 63..65, 64..128, 17..211, 299..300, 5..5] {
            let s = sparse.range_stats(range.clone(), &deg);
            let d = dense.range_stats(range.clone(), &deg);
            assert_eq!(s, d, "range {range:?}");
            // Brute-force check.
            let want_count = actives.iter().filter(|&&v| range.contains(&v)).count();
            let want_sum: u64 = actives
                .iter()
                .filter(|&&v| range.contains(&v))
                .map(|&v| deg[v as usize] as u64)
                .sum();
            assert_eq!(s, (want_count, want_sum), "range {range:?}");
        }
        // Whole-range stats match the cached totals.
        assert_eq!(
            sparse.range_stats(0..300, &deg),
            (sparse.len(), sparse.degree_sum())
        );
    }

    #[test]
    fn iter_matches_list() {
        let deg = vec![0u32; 100];
        let f = Frontier::from_sparse(vec![5, 50, 99], 100, &deg);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![5, 50, 99]);
        let d = Frontier::from_dense(Bitmap::from_indices(100, &[5, 50, 99]), &deg, &pool());
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![5, 50, 99]);
    }
}
