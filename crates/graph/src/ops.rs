//! Whole-graph transformations: transpose, symmetrize, relabel, subgraphs.

use crate::edge_list::EdgeList;
use crate::types::VertexId;

/// Reverses every edge: `(u, v)` becomes `(v, u)`. Weights follow edges.
pub fn transpose(el: &EdgeList) -> EdgeList {
    let mut out = EdgeList::with_capacity(el.num_vertices(), el.num_edges());
    match el.weights() {
        None => {
            for (u, v) in el.iter() {
                out.push(v, u);
            }
        }
        Some(_) => {
            for (u, v, w) in el.iter_weighted() {
                out.push_weighted(v, u, w);
            }
        }
    }
    out
}

/// Makes the graph symmetric: for every edge `(u, v)` ensures `(v, u)` is
/// present (weights copied to the reverse edge), removing duplicate edges
/// and self-loop mirrors. Output is sorted by `(src, dst)`.
///
/// Algorithms with undirected semantics (connected components, the paper's
/// Orkut/Yahoo/USAroad data sets) run on symmetrized inputs.
pub fn symmetrize(el: &EdgeList) -> EdgeList {
    let n = el.num_vertices();
    let mut out = EdgeList::with_capacity(n, el.num_edges() * 2);
    match el.weights() {
        None => {
            for (u, v) in el.iter() {
                out.push(u, v);
                if u != v {
                    out.push(v, u);
                }
            }
        }
        Some(_) => {
            for (u, v, w) in el.iter_weighted() {
                out.push_weighted(u, v, w);
                if u != v {
                    out.push_weighted(v, u, w);
                }
            }
        }
    }
    out.sort_and_dedup();
    out
}

/// Renames vertices: vertex `v` becomes `perm[v]`. `perm` must be a
/// permutation of `0..n`.
pub fn relabel(el: &EdgeList, perm: &[VertexId]) -> EdgeList {
    assert_eq!(perm.len(), el.num_vertices());
    debug_assert!(is_permutation(perm));
    let mut out = EdgeList::with_capacity(el.num_vertices(), el.num_edges());
    match el.weights() {
        None => {
            for (u, v) in el.iter() {
                out.push(perm[u as usize], perm[v as usize]);
            }
        }
        Some(_) => {
            for (u, v, w) in el.iter_weighted() {
                out.push_weighted(perm[u as usize], perm[v as usize], w);
            }
        }
    }
    out
}

/// Extracts the subgraph induced by `keep` (a sorted set of vertex ids),
/// relabelling kept vertices to `0..keep.len()` in order.
pub fn induced_subgraph(el: &EdgeList, keep: &[VertexId]) -> EdgeList {
    debug_assert!(keep.windows(2).all(|w| w[0] < w[1]), "keep must be sorted");
    let n = el.num_vertices();
    let mut new_id = vec![u32::MAX; n];
    for (i, &v) in keep.iter().enumerate() {
        new_id[v as usize] = i as u32;
    }
    let mut out = EdgeList::with_capacity(keep.len(), el.num_edges());
    for i in 0..el.num_edges() {
        let (u, v) = el.edge(i);
        let (nu, nv) = (new_id[u as usize], new_id[v as usize]);
        if nu != u32::MAX && nv != u32::MAX {
            if el.is_weighted() {
                out.push_weighted(nu, nv, el.weight(i));
            } else {
                out.push(nu, nv);
            }
        }
    }
    out
}

/// Permutation renaming vertices in descending out-degree order (hubs get
/// the lowest ids). `perm[old_id] = new_id`, suitable for [`relabel`].
///
/// This is the lightweight locality preprocessing that reordering systems
/// (Frasca et al.'s adaptive layouts, degree-ordered CSR) apply; exposed
/// here so the benchmark harness can compare *relabeling* against the
/// paper's *partitioning* as locality mechanisms.
pub fn degree_order_permutation(el: &EdgeList) -> Vec<VertexId> {
    let deg = el.out_degrees();
    let mut by_degree: Vec<VertexId> = (0..el.num_vertices() as VertexId).collect();
    // Stable tie-break on vertex id keeps the permutation deterministic.
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(deg[v as usize]), v));
    let mut perm = vec![0 as VertexId; el.num_vertices()];
    for (new_id, &old_id) in by_degree.iter().enumerate() {
        perm[old_id as usize] = new_id as VertexId;
    }
    perm
}

fn is_permutation(perm: &[VertexId]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if p as usize >= perm.len() || seen[p as usize] {
            return false;
        }
        seen[p as usize] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_involution() {
        let el = EdgeList::from_edges(4, &[(0, 1), (1, 2), (3, 0)]);
        let tt = transpose(&transpose(&el));
        assert_eq!(tt, el);
    }

    #[test]
    fn transpose_swaps_degrees() {
        let el = EdgeList::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let t = transpose(&el);
        assert_eq!(t.out_degrees(), el.in_degrees());
        assert_eq!(t.in_degrees(), el.out_degrees());
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let el = EdgeList::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 3)]);
        let s = symmetrize(&el);
        let stats = crate::properties::GraphStats::compute(&s);
        assert!(stats.symmetric);
        // (0,1)+(1,0) stay, (2,3) gains (3,2), (3,3) self-loop stays single.
        assert_eq!(s.num_edges(), 5);
    }

    #[test]
    fn symmetrize_weighted_copies_weight() {
        let el = EdgeList::from_weighted_edges(3, &[(0, 2, 7.5)]);
        let s = symmetrize(&el);
        assert_eq!(s.num_edges(), 2);
        let triples: Vec<_> = s.iter_weighted().collect();
        assert!(triples.contains(&(0, 2, 7.5)));
        assert!(triples.contains(&(2, 0, 7.5)));
    }

    #[test]
    fn relabel_preserves_structure() {
        let el = EdgeList::from_edges(3, &[(0, 1), (1, 2)]);
        let r = relabel(&el, &[2, 0, 1]);
        let edges: Vec<_> = r.iter().collect();
        assert_eq!(edges, vec![(2, 0), (0, 1)]);
    }

    #[test]
    #[should_panic]
    fn relabel_rejects_bad_permutation() {
        let el = EdgeList::from_edges(3, &[(0, 1)]);
        let _ = relabel(&el, &[0, 0, 1]);
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let el = EdgeList::from_edges(4, &[(2, 0), (2, 1), (2, 3), (1, 0)]);
        let perm = degree_order_permutation(&el);
        // Vertex 2 (degree 3) becomes 0; vertex 1 (degree 1) becomes 1;
        // vertices 0 and 3 (degree 0) keep id order.
        assert_eq!(perm, vec![2, 1, 0, 3]);
        let relabeled = relabel(&el, &perm);
        let deg = relabeled.out_degrees();
        assert!(deg.windows(2).all(|w| w[0] >= w[1]), "{deg:?}");
    }

    #[test]
    fn induced_subgraph_relabels() {
        let el = EdgeList::from_edges(5, &[(0, 1), (1, 4), (4, 0), (2, 3)]);
        let sub = induced_subgraph(&el, &[0, 1, 4]);
        assert_eq!(sub.num_vertices(), 3);
        let edges: Vec<_> = sub.iter().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }
}
