//! The three-way density classification, observed end-to-end through
//! [`GraphGrind2::kernel_counts`], plus complementary tests for the
//! partition-count heuristic.
//!
//! The graph is built so that single frontiers land *exactly on* and *one
//! past* both Algorithm 2 thresholds (`|E| / 20` and `|E| / 2`), pinning
//! the boundary semantics: a frontier is promoted only when its metric
//! strictly exceeds the threshold.

use gg_core::heuristic::{suggest_partitions, HeuristicInputs, MAX_PARTITIONS};
use gg_core::prelude::*;
use gg_graph::edge_list::EdgeList;
use gg_runtime::numa::NumaTopology;

/// An edge operator that activates every destination.
struct Activate;

impl EdgeOp for Activate {
    fn update(&self, _s: u32, _d: u32, _w: f32) -> bool {
        true
    }
    fn update_atomic(&self, _s: u32, _d: u32, _w: f32) -> bool {
        true
    }
}

/// 40 vertices, exactly 60 edges, with out-degrees chosen so frontiers can
/// straddle both thresholds:
///
/// * vertex 0 ("hub")    — 30 out-edges (`|E| / 2`),
/// * vertex 1 ("almost") — 28 out-edges,
/// * vertex 2 ("small")  — 2 out-edges,
/// * vertex 3 ("zero")   — no out-edges.
const HUB: u32 = 0;
const ALMOST: u32 = 1;
const SMALL: u32 = 2;
const ZERO: u32 = 3;

fn threshold_graph() -> EdgeList {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for t in 0..30u32 {
        edges.push((HUB, 4 + t));
    }
    for t in 0..28u32 {
        edges.push((ALMOST, 4 + t));
    }
    edges.push((SMALL, 4));
    edges.push((SMALL, 5));
    let el = EdgeList::from_edges(40, &edges);
    assert_eq!(el.num_edges(), 60);
    el
}

fn engine() -> GraphGrind2 {
    GraphGrind2::new(&threshold_graph(), Config::for_tests())
}

#[test]
fn metric_at_sparse_threshold_stays_sparse() {
    let e = engine();
    // {SMALL}: metric = 1 + 2 = 3 = |E| / 20 — not strictly above, sparse.
    let f = e.frontier_sparse(vec![SMALL]);
    assert_eq!(f.density_metric(), 3);
    e.edge_map(&f, &Activate, EdgeMapSpec::edge_oriented());
    assert_eq!(e.kernel_counts().snapshot(), (1, 0, 0));
}

#[test]
fn metric_one_past_sparse_threshold_is_medium() {
    let e = engine();
    // {SMALL, ZERO}: metric = 2 + 2 = 4 > |E| / 20 — medium.
    let f = e.frontier_sparse(vec![SMALL, ZERO]);
    assert_eq!(f.density_metric(), 4);
    e.edge_map(&f, &Activate, EdgeMapSpec::edge_oriented());
    assert_eq!(e.kernel_counts().snapshot(), (0, 1, 0));
}

#[test]
fn metric_at_dense_threshold_stays_medium() {
    let e = engine();
    // {ALMOST, ZERO}: metric = 2 + 28 = 30 = |E| / 2 — not strictly above.
    let f = e.frontier_sparse(vec![ALMOST, ZERO]);
    assert_eq!(f.density_metric(), 30);
    e.edge_map(&f, &Activate, EdgeMapSpec::edge_oriented());
    assert_eq!(e.kernel_counts().snapshot(), (0, 1, 0));
}

#[test]
fn metric_one_past_dense_threshold_is_dense() {
    let e = engine();
    // {HUB}: metric = 1 + 30 = 31 > |E| / 2 — dense.
    let f = e.frontier_sparse(vec![HUB]);
    assert_eq!(f.density_metric(), 31);
    e.edge_map(&f, &Activate, EdgeMapSpec::edge_oriented());
    assert_eq!(e.kernel_counts().snapshot(), (0, 0, 1));
}

#[test]
fn kernel_counts_accumulate_across_calls() {
    let e = engine();
    for f in [
        e.frontier_sparse(vec![SMALL]),        // sparse
        e.frontier_sparse(vec![SMALL, ZERO]),  // medium
        e.frontier_sparse(vec![ALMOST, ZERO]), // medium
        e.frontier_sparse(vec![HUB]),          // dense
    ] {
        e.edge_map(&f, &Activate, EdgeMapSpec::edge_oriented());
    }
    assert_eq!(e.kernel_counts().snapshot(), (1, 2, 1));
    e.kernel_counts().reset();
    assert_eq!(e.kernel_counts().snapshot(), (0, 0, 0));
}

#[test]
fn all_three_kernels_produce_the_same_next_frontier() {
    // The safety claim behind the classification: kernel choice must never
    // change results. Run the same mid-density frontier through each class
    // by shifting the thresholds, and compare the produced frontiers.
    let el = threshold_graph();
    let active = vec![ALMOST, SMALL];
    let mut produced: Vec<Vec<u32>> = Vec::new();
    for thresholds in [
        // metric = 32: dense under (divisor 4 -> cut 15), medium under the
        // paper's (2, 20), sparse when the sparse cut is huge.
        Thresholds {
            dense_divisor: 4,
            sparse_divisor: 20,
        },
        Thresholds {
            dense_divisor: 2,
            sparse_divisor: 20,
        },
        Thresholds {
            dense_divisor: 1,
            sparse_divisor: 1,
        },
    ] {
        let cfg = Config {
            thresholds,
            ..Config::for_tests()
        };
        let e = GraphGrind2::new(&el, cfg);
        let next = e.edge_map(
            &e.frontier_sparse(active.clone()),
            &Activate,
            EdgeMapSpec::edge_oriented(),
        );
        produced.push(next.to_vertex_list());
    }
    // One call per engine, and the three engines chose three different
    // kernels for the same frontier...
    assert_eq!(produced.len(), 3);
    // ...yet produced identical next frontiers.
    assert_eq!(produced[0], produced[1]);
    assert_eq!(produced[1], produced[2]);
    assert!(!produced[0].is_empty());
}

// ---- heuristic ----------------------------------------------------------

#[test]
fn heuristic_gives_every_thread_a_partition() {
    // Atomics removal (§III.C) needs P >= threads regardless of graph size.
    for threads in [1usize, 3, 8, 48] {
        let p = suggest_partitions(&HeuristicInputs::new(
            1000,
            10_000,
            threads,
            NumaTopology::new(1),
        ));
        assert!(p >= threads, "threads = {threads}, p = {p}");
    }
}

#[test]
fn heuristic_caps_at_max_partitions() {
    // Billion-edge inputs must not explode past the §IV.A scheduling cliff.
    let p = suggest_partitions(&HeuristicInputs::new(
        100_000_000,
        2_000_000_000,
        48,
        NumaTopology::paper_machine(),
    ));
    assert_eq!(p, MAX_PARTITIONS);
}

#[test]
fn heuristic_rounds_to_numa_multiples() {
    for domains in [2usize, 3, 4] {
        let p = suggest_partitions(&HeuristicInputs::new(
            5_000_000,
            50_000_000,
            5,
            NumaTopology::new(domains),
        ));
        assert_eq!(p % domains, 0, "domains = {domains}, p = {p}");
    }
}

#[test]
fn heuristic_asks_for_more_partitions_when_cache_shrinks() {
    let mut big_llc = HeuristicInputs::new(4_000_000, 80_000_000, 8, NumaTopology::new(2));
    big_llc.llc_bytes = 64 * 1024 * 1024;
    let mut small_llc = big_llc;
    small_llc.llc_bytes = 4 * 1024 * 1024;
    let p_big = suggest_partitions(&big_llc);
    let p_small = suggest_partitions(&small_llc);
    assert!(
        p_small >= p_big,
        "smaller LLC must not want fewer partitions: {p_big} -> {p_small}"
    );
}
