//! Instrumented traversals feeding `gg-memsim`, plus the deterministic
//! execution **record/replay** harness.
//!
//! The first half replays the framework's traversal orders while emitting
//! every memory reference into an [`AccessSink`] — the portable substitute
//! for the paper's hardware measurements:
//!
//! * [`fig2_reuse_profile`] reproduces Figure 2: the reuse distances of
//!   next-array updates during a PRDelta-style dense push over the
//!   destination-partitioned CSR, for a given partition count;
//! * [`run_traced`] / [`run_traced_parallel`] reproduce the access streams
//!   behind Figure 8: full executions of PR / Bellman-Ford / BFS against
//!   the composite store (with Algorithm 2's decision logic), streamed
//!   into a cache simulator to obtain MPKI.
//!
//! Figure 2's replay is sequential in partition order (reuse distance is
//! defined on a serial reference stream; partitioning shortens the
//! distances regardless of which thread runs which partition). Figure 8's
//! replay interleaves the streams of `threads` concurrent workers, because
//! the paper's MPKI effect comes from the *aggregate* working set of the
//! partitions running at the same time competing for the shared LLC.
//!
//! ## Record/replay
//!
//! The engine's core contract is bit-identity across partition counts,
//! thread counts, chunk caps and steal schedules. When that contract
//! breaks, a differential test's terminal "bits differ" starts a bisect
//! marathon; the record/replay harness turns the same regression into a
//! one-command diagnosis. [`GraphGrind2`](crate::engine::GraphGrind2) can
//! record, per edge-map round, a [`RoundRecord`]:
//!
//! * **contract fields** — the digest of the round's merged output
//!   frontier ([`frontier_digest`]: length + order-sensitive FNV-1a over
//!   the active vertices, identical for sparse and dense representations)
//!   and the planned kernel / output-representation choices
//!   ([`RoundKernel`]) — these must match bit-for-bit between a recording
//!   and any replay of the same scenario, whatever the thread count or
//!   chunk cap;
//! * **schedule fields** — per-round [`CounterSnapshot`] deltas (chunks,
//!   hub sub-chunks, steals, …) — informational context for a diagnosis,
//!   never compared, because stealing is timing-dependent by design.
//!
//! A recording plus its header ([`TraceHeader`]) round-trips through a
//! versioned JSON-lines file ([`RoundTrace::to_jsonl`] /
//! [`RoundTrace::from_jsonl`]; no external serializer), and
//! [`first_divergence`] compares two traces round by round, reporting the
//! **first diverging round** — round index, partition, field, expected vs
//! got — instead of a terminal mismatch. `repro record` / `repro replay`
//! (in `gg-bench`) drive this end to end, and
//! [`ThreadVaryingMinLabel`] is the fault-injection operator that proves
//! the diagnosis localizes a real thread-dependent divergence.

use gg_graph::coo::PartitionedCoo;
use gg_graph::csc::Csc;
use gg_graph::csr::{Csr, PartitionedCsr};
use gg_graph::edge_list::EdgeList;
use gg_graph::partition::{PartitionBy, PartitionSet};
use gg_graph::reorder::EdgeOrder;
use gg_memsim::layout::{ArrayHandle, MemoryLayout};
use gg_memsim::reuse::ReuseProfile;
use gg_memsim::trace::{AccessSink, AddressTrace};

use crate::config::Thresholds;
use crate::edge_map::{decide, EdgeKind};

/// Operation counts of a traced execution (for the instruction proxy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TracedWork {
    /// Edges examined.
    pub edges: u64,
    /// Vertices visited (including replicas / range scans).
    pub vertices: u64,
}

/// Figure 2: reuse-distance profile of the writes to the next-value array
/// during one full dense forward traversal of the `num_partitions`-way
/// destination-partitioned CSR (the PRDelta update stream).
pub fn fig2_reuse_profile(el: &EdgeList, num_partitions: usize) -> ReuseProfile {
    let set =
        PartitionSet::edge_balanced(&el.in_degrees(), num_partitions, PartitionBy::Destination);
    let pcsr = PartitionedCsr::new(el, &set);
    let mut layout = MemoryLayout::new();
    // PRDelta accumulates 8-byte deltas per destination vertex.
    let next_data = layout.array(el.num_vertices(), 8);
    let mut trace = AddressTrace::with_capacity(el.num_edges());
    for p in 0..pcsr.num_partitions() {
        let part = pcsr.part(p);
        for i in 0..part.num_stored_vertices() {
            for &v in part.neighbors_at(i) {
                next_data.touch(&mut trace, v as usize);
            }
        }
    }
    ReuseProfile::from_trace(&trace)
}

/// Algorithms traced for the Figure 8 MPKI sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracedAlgorithm {
    /// 10 power-method iterations; every iteration dense (edge-oriented).
    PageRank,
    /// Bellman-Ford from vertex 0; frontier-driven, mostly dense on social
    /// graphs (requires edge weights; unit weights are substituted if the
    /// input is unweighted).
    BellmanFord,
    /// BFS from vertex 0; vertex-oriented, mostly sparse/medium — the
    /// paper's example of an algorithm partitioning does *not* help.
    Bfs,
}

/// Synthetic address-space handles for the traced data structures.
struct Arrays {
    coo_srcs: ArrayHandle,
    coo_dsts: ArrayHandle,
    coo_weights: ArrayHandle,
    csr_targets: ArrayHandle,
    csr_weights: ArrayHandle,
    csc_sources: ArrayHandle,
    csc_weights: ArrayHandle,
    cur_bitmap: ArrayHandle,
    /// 8-byte per-vertex value array A (rank / ping).
    data_a: ArrayHandle,
    /// 8-byte per-vertex value array B (next rank / pong).
    data_b: ArrayHandle,
    /// 4-byte per-vertex array (BFS parent / BF distance).
    small_data: ArrayHandle,
}

impl Arrays {
    fn new(n: usize, m: usize) -> Self {
        let mut layout = MemoryLayout::new();
        Arrays {
            coo_srcs: layout.array(m, 4),
            coo_dsts: layout.array(m, 4),
            coo_weights: layout.array(m, 4),
            csr_targets: layout.array(m, 4),
            csr_weights: layout.array(m, 4),
            csc_sources: layout.array(m, 4),
            csc_weights: layout.array(m, 4),
            cur_bitmap: layout.bitmap(n),
            data_a: layout.array(n, 8),
            data_b: layout.array(n, 8),
            small_data: layout.array(n, 4),
        }
    }
}

/// The traced composite store.
struct TracedStore {
    coo: PartitionedCoo,
    csr: Csr,
    csc: Csc,
    out_degrees: Vec<u32>,
    arrays: Arrays,
    thresholds: Thresholds,
}

impl TracedStore {
    fn new(el: &EdgeList, num_partitions: usize, order: EdgeOrder, thresholds: Thresholds) -> Self {
        let set =
            PartitionSet::edge_balanced(&el.in_degrees(), num_partitions, PartitionBy::Destination);
        TracedStore {
            coo: PartitionedCoo::new(el, &set, order),
            csr: Csr::from_edge_list(el),
            csc: Csc::from_edge_list(el),
            out_degrees: el.out_degrees(),
            arrays: Arrays::new(el.num_vertices(), el.num_edges()),
            thresholds,
        }
    }

    fn n(&self) -> usize {
        self.csr.num_vertices()
    }

    fn m(&self) -> usize {
        self.csr.num_edges()
    }

    /// Emits the accesses of one edge of partition `p` at local index `i`.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn emit_edge<S, F>(
        &self,
        sink: &mut S,
        p: usize,
        i: usize,
        active: &[bool],
        use_small_data: bool,
        flip: bool,
        work: &mut TracedWork,
        visit: &mut F,
    ) where
        S: AccessSink,
        F: FnMut(u32, u32, f32),
    {
        let a = &self.arrays;
        let (src_arr, dst_arr) = if flip {
            (&a.data_b, &a.data_a)
        } else {
            (&a.data_a, &a.data_b)
        };
        let range = self.coo.part_range(p);
        let srcs = self.coo.part_srcs(p);
        let dsts = self.coo.part_dsts(p);
        let weights = self.coo.part_weights(p);
        let e = range.start + i;
        work.edges += 1;
        a.coo_srcs.touch(sink, e);
        a.coo_dsts.touch(sink, e);
        a.cur_bitmap.touch_bit(sink, srcs[i] as usize);
        if active[srcs[i] as usize] {
            let w = weights.map_or(1.0, |w| w[i]);
            a.coo_weights.touch(sink, e);
            if use_small_data {
                a.small_data.touch(sink, srcs[i] as usize);
                a.small_data.touch(sink, dsts[i] as usize);
            } else {
                src_arr.touch(sink, srcs[i] as usize);
                dst_arr.touch(sink, dsts[i] as usize);
            }
            visit(srcs[i], dsts[i], w);
        }
    }

    /// One dense COO pass over every edge.
    ///
    /// With `threads > 1` the reference stream models the paper's parallel
    /// execution: each worker owns a contiguous block of partitions (the
    /// domain-major schedule) and the workers' streams are interleaved in
    /// small chunks, so the *aggregate* working set of all concurrent
    /// partitions competes for the simulated cache — the effect that makes
    /// MPKI fall as partitions shrink (Figure 8). `threads == 1` is the
    /// plain sequential order.
    #[allow(clippy::too_many_arguments)]
    fn dense_pass<S, F>(
        &self,
        sink: &mut S,
        active: &[bool],
        use_small_data: bool,
        flip: bool,
        threads: usize,
        work: &mut TracedWork,
        mut visit: F,
    ) where
        S: AccessSink,
        F: FnMut(u32, u32, f32),
    {
        const CHUNK: usize = 16;
        let num_parts = self.coo.num_partitions();
        let t = threads.clamp(1, num_parts);
        // Worker w owns partitions [w * P / t, (w+1) * P / t).
        // Cursor per worker: (current partition, edge offset inside it).
        let mut cursor: Vec<(usize, usize)> = (0..t).map(|w| (w * num_parts / t, 0)).collect();
        let limit: Vec<usize> = (0..t).map(|w| (w + 1) * num_parts / t).collect();
        let mut live = t;
        while live > 0 {
            live = 0;
            for w in 0..t {
                let (ref mut p, ref mut off) = cursor[w];
                let mut budget = CHUNK;
                while budget > 0 && *p < limit[w] {
                    let part_len = self.coo.part_range(*p).len();
                    if *off >= part_len {
                        *p += 1;
                        *off = 0;
                        continue;
                    }
                    self.emit_edge(
                        sink,
                        *p,
                        *off,
                        active,
                        use_small_data,
                        flip,
                        work,
                        &mut visit,
                    );
                    *off += 1;
                    budget -= 1;
                }
                if *p < limit[w] {
                    live += 1;
                }
            }
        }
    }

    /// One sparse CSR pass over the active list.
    fn sparse_pass<S, F>(
        &self,
        sink: &mut S,
        active_list: &[u32],
        work: &mut TracedWork,
        mut visit: F,
    ) where
        S: AccessSink,
        F: FnMut(u32, u32, f32),
    {
        let a = &self.arrays;
        for &u in active_list {
            work.vertices += 1;
            a.small_data.touch(sink, u as usize);
            for e in self.csr.edge_range(u) {
                work.edges += 1;
                a.csr_targets.touch(sink, e);
                a.csr_weights.touch(sink, e);
                let v = self.csr.targets()[e];
                a.small_data.touch(sink, v as usize);
                visit(u, v, self.csr.weight_at(e));
            }
        }
    }

    /// One medium CSC (pull) pass with per-destination early exit driven by
    /// `cond`.
    #[allow(clippy::too_many_arguments)]
    fn medium_pass<S, C, F>(
        &self,
        sink: &mut S,
        active: &[bool],
        work: &mut TracedWork,
        cond: C,
        mut visit: F,
    ) where
        S: AccessSink,
        C: Fn(u32) -> bool,
        F: FnMut(u32, u32, f32),
    {
        let a = &self.arrays;
        for v in 0..self.n() as u32 {
            work.vertices += 1;
            if !cond(v) {
                continue;
            }
            a.small_data.touch(sink, v as usize);
            for e in self.csc.edge_range(v) {
                work.edges += 1;
                a.csc_sources.touch(sink, e);
                let u = self.csc.sources()[e];
                a.cur_bitmap.touch_bit(sink, u as usize);
                if active[u as usize] {
                    a.csc_weights.touch(sink, e);
                    a.small_data.touch(sink, u as usize);
                    visit(u, v, self.csc.weight_at(e));
                    if !cond(v) {
                        break;
                    }
                }
            }
        }
    }
}

/// Replays `algo` on the composite store with `num_partitions` partitions,
/// streaming every memory reference into `sink` as a single sequential
/// stream. Returns the op counts for the MPKI instruction proxy.
pub fn run_traced<S: AccessSink>(
    el: &EdgeList,
    num_partitions: usize,
    order: EdgeOrder,
    algo: TracedAlgorithm,
    sink: &mut S,
) -> TracedWork {
    run_traced_parallel(el, num_partitions, order, algo, 1, sink)
}

/// Like [`run_traced`], but models `threads` concurrent workers sharing
/// the cache during dense passes: each worker owns a contiguous block of
/// partitions (the domain-major schedule) and the workers' reference
/// streams are interleaved in small chunks — the configuration behind
/// Figure 8's MPKI-vs-partitions sweep.
pub fn run_traced_parallel<S: AccessSink>(
    el: &EdgeList,
    num_partitions: usize,
    order: EdgeOrder,
    algo: TracedAlgorithm,
    threads: usize,
    sink: &mut S,
) -> TracedWork {
    let store = TracedStore::new(el, num_partitions, order, Thresholds::default());
    match algo {
        TracedAlgorithm::PageRank => trace_pagerank(&store, threads, sink),
        TracedAlgorithm::BellmanFord => trace_bellman_ford(&store, threads, sink),
        TracedAlgorithm::Bfs => trace_bfs(&store, sink),
    }
}

fn trace_pagerank<S: AccessSink>(store: &TracedStore, threads: usize, sink: &mut S) -> TracedWork {
    let n = store.n();
    let mut work = TracedWork::default();
    let mut rank = vec![1.0f64 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let active = vec![true; n];
    let deg = store.out_degrees.clone();
    for iter in 0..10 {
        next.fill(0.0);
        let flip = iter % 2 == 1;
        store.dense_pass(
            sink,
            &active,
            false,
            flip,
            threads,
            &mut work,
            |u, v, _w| {
                let d = deg[u as usize].max(1) as f64;
                next[v as usize] += rank[u as usize] / d;
            },
        );
        for x in next.iter_mut() {
            *x = 0.15 / n as f64 + 0.85 * *x;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    work
}

fn trace_bfs<S: AccessSink>(store: &TracedStore, sink: &mut S) -> TracedWork {
    let n = store.n();
    let m = store.m() as u64;
    let mut work = TracedWork::default();
    let mut parent = vec![u32::MAX; n];
    parent[0] = 0;
    let mut frontier = vec![0u32];
    while !frontier.is_empty() {
        let metric: u64 = frontier.len() as u64
            + frontier
                .iter()
                .map(|&v| store.out_degrees[v as usize] as u64)
                .sum::<u64>();
        let kind = decide(metric, m, &store.thresholds);
        let mut next_frontier: Vec<u32> = Vec::new();
        match kind {
            EdgeKind::Sparse => {
                store.sparse_pass(sink, &frontier, &mut work, |u, v, _w| {
                    if parent[v as usize] == u32::MAX {
                        parent[v as usize] = u;
                        next_frontier.push(v);
                    }
                });
            }
            EdgeKind::Medium | EdgeKind::Dense => {
                // BFS pull (the direction-optimized dense phase).
                let mut active = vec![false; n];
                for &v in &frontier {
                    active[v as usize] = true;
                }
                let parent_snapshot = parent.clone();
                store.medium_pass(
                    sink,
                    &active,
                    &mut work,
                    |v| parent_snapshot[v as usize] == u32::MAX,
                    |u, v, _w| {
                        if parent[v as usize] == u32::MAX {
                            parent[v as usize] = u;
                            next_frontier.push(v);
                        }
                    },
                );
            }
        }
        next_frontier.sort_unstable();
        next_frontier.dedup();
        frontier = next_frontier;
    }
    work
}

fn trace_bellman_ford<S: AccessSink>(
    store: &TracedStore,
    threads: usize,
    sink: &mut S,
) -> TracedWork {
    let n = store.n();
    let m = store.m() as u64;
    let mut work = TracedWork::default();
    let mut dist = vec![f32::INFINITY; n];
    dist[0] = 0.0;
    let mut frontier = vec![0u32];
    let mut rounds = 0usize;
    while !frontier.is_empty() && rounds <= n {
        rounds += 1;
        let metric: u64 = frontier.len() as u64
            + frontier
                .iter()
                .map(|&v| store.out_degrees[v as usize] as u64)
                .sum::<u64>();
        let kind = decide(metric, m, &store.thresholds);
        let mut changed = vec![false; n];
        match kind {
            EdgeKind::Sparse => {
                store.sparse_pass(sink, &frontier, &mut work, |u, v, w| {
                    let cand = dist[u as usize] + w;
                    if cand < dist[v as usize] {
                        dist[v as usize] = cand;
                        changed[v as usize] = true;
                    }
                });
            }
            EdgeKind::Medium | EdgeKind::Dense => {
                let mut active = vec![false; n];
                for &v in &frontier {
                    active[v as usize] = true;
                }
                store.dense_pass(sink, &active, true, false, threads, &mut work, |u, v, w| {
                    let cand = dist[u as usize] + w;
                    if cand < dist[v as usize] {
                        dist[v as usize] = cand;
                        changed[v as usize] = true;
                    }
                });
            }
        }
        frontier = (0..n as u32).filter(|&v| changed[v as usize]).collect();
    }
    work
}

// ---------------------------------------------------------------------------
// Record/replay: per-round execution traces
// ---------------------------------------------------------------------------

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::thread::ThreadId;

use gg_runtime::counters::CounterSnapshot;

use crate::config::{ChunkCap, Config, ExecutorKind, ForcedKernel, OutputMode};
use crate::edge_map::EdgeOp;
use crate::frontier::Frontier;
use crate::fused::FusedFrontier;
use crate::partitioned::PartKernel;
use crate::plan::{kernel_from_label, kernel_label, OutputRepr};

/// Version stamp of the JSON-lines trace format. Bumped on any change to
/// the line schema; [`RoundTrace::from_jsonl`] refuses other versions.
/// Version 2 added the fused-traversal fields: optional per-lane digests
/// (`lanes`) and the `fused_lanes` / `lane_union_words` sched counters.
/// Version 3 added the layout fields: the header's `layout` policy label
/// and each partitioned step's effective edge-layout label (`l`), so
/// replay pins the layout advisor's per-partition decisions.
pub const TRACE_FORMAT_VERSION: u64 = 3;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Order-sensitive digest of a frontier: FNV-1a over the active vertices
/// in ascending order. [`Frontier::iter`] yields ascending vertex ids for
/// both the sparse-list and the dense-bitmap representation, so the digest
/// is representation-independent — a round that merged sparse outputs and
/// a round that merged bitmap segments hash identically iff they activated
/// the same vertex set. Pair it with [`Frontier::len`] (recorded
/// separately) for a cheap first-level check.
pub fn frontier_digest(frontier: &Frontier) -> u64 {
    let mut h = FNV_OFFSET;
    for v in frontier.iter() {
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Per-lane digests of a fused frontier: entry `k` is the FNV-1a digest
/// (same scheme as [`frontier_digest`]) of the vertices active in lane
/// `k`, in ascending order. Lane `k` of a fused round and the matching
/// round of a single-source recording therefore hash identically iff they
/// activated the same vertex set — which lets `repro replay` localize a
/// fused divergence to one query of the batch.
pub fn lane_digests(fused: &FusedFrontier) -> Vec<u64> {
    let mut hs = vec![FNV_OFFSET; fused.num_lanes() as usize];
    let mask = fused.lane_mask();
    fused.for_each(|v, lanes| {
        let mut m = lanes & mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            let mut h = hs[lane];
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
            }
            hs[lane] = h;
        }
    });
    hs
}

/// [`frontier_digest`] of a fused frontier's **union** (any-lane) vertex
/// set — identical to digesting the materialised union [`Frontier`].
pub fn fused_union_digest(fused: &FusedFrontier) -> u64 {
    let mut h = FNV_OFFSET;
    fused.for_each(|v, _| {
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    });
    h
}

/// Run-level metadata of a recorded trace: what was executed and under
/// which configuration. Replays compare contract fields of the per-round
/// records whenever the headers are *plan-comparable* (see
/// [`first_divergence`]); the header also makes a trace self-describing
/// for offline reading.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// [`TRACE_FORMAT_VERSION`] at recording time.
    pub version: u64,
    /// Algorithm label (e.g. `bfs`, `pr`).
    pub algorithm: String,
    /// Scenario / dataset label.
    pub scenario: String,
    /// Worker threads of the recording run.
    pub threads: u64,
    /// Partition count of the recording run.
    pub partitions: u64,
    /// Executor label: `monolithic` or `partitioned`.
    pub executor: String,
    /// Output-mode label: `auto`, `force_sparse` or `force_dense`.
    pub output_mode: String,
    /// Chunk-cap label: `auto`, `max` or a fixed edge count.
    pub chunk: String,
    /// Forced-kernel label: `none`, `csr_a`, `csc_na`, `coo_a`, `coo_na`.
    pub force: String,
    /// Layout-policy label ([`LayoutPolicy::label`]
    /// (crate::config::LayoutPolicy::label)): `fixed:<order>` or
    /// `advised:<rate>`. Step layouts are compared only between traces
    /// recorded under the same policy label (see [`first_divergence`]).
    pub layout: String,
    /// True when the run used the fault-injection operator
    /// ([`ThreadVaryingMinLabel`]).
    pub fault: bool,
}

impl TraceHeader {
    /// Builds a header describing a run of `algorithm` on `scenario` under
    /// `config`.
    pub fn new(algorithm: &str, scenario: &str, config: &Config, fault: bool) -> Self {
        TraceHeader {
            version: TRACE_FORMAT_VERSION,
            algorithm: algorithm.to_string(),
            scenario: scenario.to_string(),
            threads: config.threads as u64,
            partitions: config.num_partitions as u64,
            executor: match config.executor {
                ExecutorKind::Monolithic => "monolithic",
                ExecutorKind::Partitioned => "partitioned",
            }
            .to_string(),
            output_mode: match config.output_mode {
                OutputMode::Auto => "auto",
                OutputMode::ForceSparse => "force_sparse",
                OutputMode::ForceDense => "force_dense",
            }
            .to_string(),
            chunk: match config.chunk_edges {
                ChunkCap::Auto => "auto".to_string(),
                ChunkCap::Fixed(n) if n == usize::MAX => "max".to_string(),
                ChunkCap::Fixed(n) => n.to_string(),
            },
            force: match config.force {
                None => "none",
                Some(ForcedKernel::CsrAtomic) => "csr_a",
                Some(ForcedKernel::CscNoAtomic) => "csc_na",
                Some(ForcedKernel::CooAtomic) => "coo_a",
                Some(ForcedKernel::CooNoAtomic) => "coo_na",
            }
            .to_string(),
            layout: config.layout.label(),
            fault,
        }
    }
}

/// One partition's planned (kernel, output-representation) pair inside a
/// [`RoundKernel::Partitioned`] record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepRecord {
    /// Partition index.
    pub partition: u64,
    /// Locally selected kernel.
    pub kernel: PartKernel,
    /// Locally selected output representation.
    pub output: OutputRepr,
    /// The partition's effective edge layout (fixed or advisor-chosen).
    pub layout: EdgeOrder,
}

/// The planned kernel choice(s) of one recorded round — a contract field:
/// the planner is a deterministic function of the input frontier and the
/// static partition metadata, so two runs of the same scenario under a
/// plan-comparable configuration must record identical values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoundKernel {
    /// Monolithic executor: the single Algorithm 2 class for the round.
    Monolithic(EdgeKind),
    /// Monolithic executor with a forced kernel (Figure 5/6 ablations) —
    /// no decision was made, so there is nothing to compare; the forced
    /// label lives in the header.
    Forced,
    /// Partitioned executor: per-partition steps in submission order
    /// (empty partitions absent), as planned from the round's *input*
    /// frontier.
    Partitioned(Vec<StepRecord>),
}

/// One edge-map round of a recorded run.
///
/// `frontier_len` / `frontier_hash` digest the round's merged **output**
/// frontier; `kernel` is the plan for the round's **input** frontier
/// (the previous round's output, or the algorithm's initial frontier for
/// round 0). `sched` holds the round's [`CounterSnapshot`] delta —
/// schedule diagnostics, never compared.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundRecord {
    /// 0-based round index within the run.
    pub round: u64,
    /// Active-vertex count of the round's output frontier.
    pub frontier_len: u64,
    /// [`frontier_digest`] of the round's output frontier.
    pub frontier_hash: u64,
    /// Planned kernel choice(s) for the round's input frontier.
    pub kernel: RoundKernel,
    /// Per-lane digests of the round's output ([`lane_digests`]) when the
    /// round was a fused multi-source edge map; `None` for scalar rounds.
    /// A contract field: lane `k` must be bit-identical across
    /// partition/thread/chunk configurations.
    pub lanes: Option<Vec<u64>>,
    /// Work attributable to this round (counter deltas). Informational:
    /// `steals` / `cross_domain_steals` are timing-dependent by design,
    /// and `chunks` / `hub_subchunks` legitimately change with
    /// `GG_THREADS` / `GG_CHUNK`.
    pub sched: CounterSnapshot,
}

/// Accumulates [`RoundRecord`]s during an engine run. Owned by
/// [`GraphGrind2`](crate::engine::GraphGrind2) behind a mutex; algorithms
/// never see it — `engine.start_recording()` before the run and
/// `engine.take_recording()` after are the whole interface.
#[derive(Debug, Default)]
pub struct RoundRecorder {
    rounds: Vec<RoundRecord>,
}

impl RoundRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the record of one completed round: the plan made for its
    /// input frontier, its merged output frontier, and its counter delta.
    pub fn record(&mut self, kernel: RoundKernel, output: &Frontier, sched: CounterSnapshot) {
        self.rounds.push(RoundRecord {
            round: self.rounds.len() as u64,
            frontier_len: output.len() as u64,
            frontier_hash: frontier_digest(output),
            kernel,
            lanes: None,
            sched,
        });
    }

    /// The fused counterpart of [`record`](Self::record): digests the
    /// union frontier into `frontier_hash` and each lane separately into
    /// `lanes`, so replay comparisons localize a fused divergence to one
    /// query of the batch.
    pub fn record_fused(
        &mut self,
        kernel: RoundKernel,
        output: &FusedFrontier,
        sched: CounterSnapshot,
    ) {
        self.rounds.push(RoundRecord {
            round: self.rounds.len() as u64,
            frontier_len: output.len() as u64,
            frontier_hash: fused_union_digest(output),
            kernel,
            lanes: Some(lane_digests(output)),
            sched,
        });
    }

    /// Consumes the recorder, yielding the rounds in execution order.
    pub fn into_rounds(self) -> Vec<RoundRecord> {
        self.rounds
    }
}

/// A complete recorded run: header + per-round records. Serializes to a
/// versioned JSON-lines file (one header line, one line per round).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundTrace {
    /// Run-level metadata.
    pub header: TraceHeader,
    /// Per-round records in execution order.
    pub rounds: Vec<RoundRecord>,
}

fn edge_kind_label(k: EdgeKind) -> &'static str {
    match k {
        EdgeKind::Sparse => "sparse",
        EdgeKind::Medium => "medium",
        EdgeKind::Dense => "dense",
    }
}

fn edge_kind_from_label(s: &str) -> Option<EdgeKind> {
    match s {
        "sparse" => Some(EdgeKind::Sparse),
        "medium" => Some(EdgeKind::Medium),
        "dense" => Some(EdgeKind::Dense),
        _ => None,
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl RoundTrace {
    /// Serializes the trace to JSON lines: a header line, then one line
    /// per round. The frontier hash is written as a hex *string* — a JSON
    /// number would round-trip through f64 in sloppy readers and silently
    /// lose low bits, which for a digest means false matches.
    pub fn to_jsonl(&self) -> String {
        let h = &self.header;
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"header\",\"version\":{},\"algorithm\":",
            h.version
        ));
        push_json_str(&mut out, &h.algorithm);
        out.push_str(",\"scenario\":");
        push_json_str(&mut out, &h.scenario);
        out.push_str(&format!(
            ",\"threads\":{},\"partitions\":{},\"executor\":",
            h.threads, h.partitions
        ));
        push_json_str(&mut out, &h.executor);
        out.push_str(",\"output_mode\":");
        push_json_str(&mut out, &h.output_mode);
        out.push_str(",\"chunk\":");
        push_json_str(&mut out, &h.chunk);
        out.push_str(",\"force\":");
        push_json_str(&mut out, &h.force);
        out.push_str(",\"layout\":");
        push_json_str(&mut out, &h.layout);
        out.push_str(&format!(",\"fault\":{}}}\n", h.fault));
        for r in &self.rounds {
            out.push_str(&format!(
                "{{\"type\":\"round\",\"round\":{},\"frontier_len\":{},\
                 \"frontier_hash\":\"{:#018x}\",\"kernel\":",
                r.round, r.frontier_len, r.frontier_hash
            ));
            match &r.kernel {
                RoundKernel::Monolithic(kind) => {
                    out.push_str(&format!(
                        "{{\"kind\":\"monolithic\",\"edge_kind\":\"{}\"}}",
                        edge_kind_label(*kind)
                    ));
                }
                RoundKernel::Forced => out.push_str("{\"kind\":\"forced\"}"),
                RoundKernel::Partitioned(steps) => {
                    out.push_str("{\"kind\":\"partitioned\",\"steps\":[");
                    for (i, s) in steps.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!(
                            "{{\"p\":{},\"k\":\"{}\",\"o\":\"{}\",\"l\":\"{}\"}}",
                            s.partition,
                            kernel_label(s.kernel),
                            s.output.label(),
                            s.layout.label()
                        ));
                    }
                    out.push_str("]}");
                }
            }
            if let Some(lanes) = &r.lanes {
                out.push_str(",\"lanes\":[");
                for (i, h) in lanes.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{h:#018x}\""));
                }
                out.push(']');
            }
            let s = &r.sched;
            out.push_str(&format!(
                ",\"sched\":{{\"edges\":{},\"vertices\":{},\"merge_words\":{},\
                 \"chunks\":{},\"hub_subchunks\":{},\"steals\":{},\
                 \"cross_domain_steals\":{},\"fused_lanes\":{},\
                 \"lane_union_words\":{}}}}}\n",
                s.edges,
                s.vertices,
                s.merge_words,
                s.chunks,
                s.hub_subchunks,
                s.steals,
                s.cross_domain_steals,
                s.fused_lanes,
                s.lane_union_words
            ));
        }
        out
    }

    /// Parses a trace previously written by [`to_jsonl`](Self::to_jsonl).
    /// Rejects missing/extra-typed fields and any version other than
    /// [`TRACE_FORMAT_VERSION`] with a descriptive error.
    pub fn from_jsonl(text: &str) -> Result<RoundTrace, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (ln, first) = lines.next().ok_or("empty trace file")?;
        let head = parse_json(first).map_err(|e| format!("line {}: {e}", ln + 1))?;
        if head.get("type").and_then(Json::as_str) != Some("header") {
            return Err(format!("line {}: expected header line", ln + 1));
        }
        let version = field_u64(&head, "version", ln)?;
        if version != TRACE_FORMAT_VERSION {
            return Err(format!(
                "unsupported trace version {version} (this build reads {TRACE_FORMAT_VERSION})"
            ));
        }
        let header = TraceHeader {
            version,
            algorithm: field_str(&head, "algorithm", ln)?,
            scenario: field_str(&head, "scenario", ln)?,
            threads: field_u64(&head, "threads", ln)?,
            partitions: field_u64(&head, "partitions", ln)?,
            executor: field_str(&head, "executor", ln)?,
            output_mode: field_str(&head, "output_mode", ln)?,
            chunk: field_str(&head, "chunk", ln)?,
            force: field_str(&head, "force", ln)?,
            layout: field_str(&head, "layout", ln)?,
            fault: head
                .get("fault")
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("line {}: missing bool field `fault`", ln + 1))?,
        };
        let mut rounds = Vec::new();
        for (ln, line) in lines {
            let v = parse_json(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
            if v.get("type").and_then(Json::as_str) != Some("round") {
                return Err(format!("line {}: expected round line", ln + 1));
            }
            let hash_str = field_str(&v, "frontier_hash", ln)?;
            let frontier_hash = hash_str
                .strip_prefix("0x")
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .ok_or_else(|| format!("line {}: bad frontier_hash `{hash_str}`", ln + 1))?;
            let kobj = v
                .get("kernel")
                .ok_or_else(|| format!("line {}: missing field `kernel`", ln + 1))?;
            let kernel = match kobj.get("kind").and_then(Json::as_str) {
                Some("monolithic") => {
                    let label = kobj
                        .get("edge_kind")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {}: missing `edge_kind`", ln + 1))?;
                    RoundKernel::Monolithic(
                        edge_kind_from_label(label).ok_or_else(|| {
                            format!("line {}: unknown edge_kind `{label}`", ln + 1)
                        })?,
                    )
                }
                Some("forced") => RoundKernel::Forced,
                Some("partitioned") => {
                    let steps = kobj
                        .get("steps")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| format!("line {}: missing `steps`", ln + 1))?;
                    let mut recs = Vec::with_capacity(steps.len());
                    for s in steps {
                        let partition = s
                            .get("p")
                            .and_then(Json::as_u64)
                            .ok_or_else(|| format!("line {}: bad step partition", ln + 1))?;
                        let k = s
                            .get("k")
                            .and_then(Json::as_str)
                            .and_then(kernel_from_label);
                        let o = s
                            .get("o")
                            .and_then(Json::as_str)
                            .and_then(OutputRepr::from_label);
                        let l = s
                            .get("l")
                            .and_then(Json::as_str)
                            .and_then(EdgeOrder::from_label);
                        match (k, o, l) {
                            (Some(kernel), Some(output), Some(layout)) => recs.push(StepRecord {
                                partition,
                                kernel,
                                output,
                                layout,
                            }),
                            _ => {
                                return Err(format!("line {}: bad step labels", ln + 1));
                            }
                        }
                    }
                    RoundKernel::Partitioned(recs)
                }
                other => {
                    return Err(format!("line {}: unknown kernel kind {other:?}", ln + 1));
                }
            };
            let lanes = match v.get("lanes") {
                None => None,
                Some(arr) => {
                    let arr = arr
                        .as_arr()
                        .ok_or_else(|| format!("line {}: `lanes` must be an array", ln + 1))?;
                    let mut hs = Vec::with_capacity(arr.len());
                    for h in arr {
                        let s = h
                            .as_str()
                            .and_then(|s| s.strip_prefix("0x"))
                            .and_then(|s| u64::from_str_radix(s, 16).ok())
                            .ok_or_else(|| format!("line {}: bad lane digest", ln + 1))?;
                        hs.push(s);
                    }
                    Some(hs)
                }
            };
            let sobj = v
                .get("sched")
                .ok_or_else(|| format!("line {}: missing field `sched`", ln + 1))?;
            let sched_field = |name: &str| -> Result<u64, String> {
                sobj.get(name)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {}: missing sched field `{name}`", ln + 1))
            };
            rounds.push(RoundRecord {
                round: field_u64(&v, "round", ln)?,
                frontier_len: field_u64(&v, "frontier_len", ln)?,
                frontier_hash,
                kernel,
                lanes,
                sched: CounterSnapshot {
                    edges: sched_field("edges")?,
                    vertices: sched_field("vertices")?,
                    merge_words: sched_field("merge_words")?,
                    chunks: sched_field("chunks")?,
                    hub_subchunks: sched_field("hub_subchunks")?,
                    steals: sched_field("steals")?,
                    cross_domain_steals: sched_field("cross_domain_steals")?,
                    fused_lanes: sched_field("fused_lanes")?,
                    lane_union_words: sched_field("lane_union_words")?,
                },
            });
        }
        Ok(RoundTrace { header, rounds })
    }
}

fn field_u64(v: &Json, key: &str, ln: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {}: missing integer field `{key}`", ln + 1))
}

fn field_str(v: &Json, key: &str, ln: usize) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("line {}: missing string field `{key}`", ln + 1))
}

/// Minimal JSON value for the trace reader — objects, arrays, strings,
/// unsigned integers and booleans, which is the entire vocabulary
/// [`RoundTrace::to_jsonl`] emits. Hand-rolled because the workspace
/// vendors no serializer and the format is ours.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(u64),
    Bool(bool),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn parse_json(line: &str) -> Result<Json, String> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let v = parse_value(bytes, &mut i)?;
    skip_ws(bytes, &mut i);
    if i != bytes.len() {
        return Err(format!("trailing garbage at byte {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && (b[*i] == b' ' || b[*i] == b'\t') {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, i);
    if *i < b.len() && b[*i] == c {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, i))
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            let mut fields = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, i);
                let key = match parse_value(b, i)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {i}")),
                };
                expect(b, i, b':')?;
                fields.push((key, parse_value(b, i)?));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {i}")),
                }
            }
        }
        Some(b'"') => {
            *i += 1;
            let mut s = String::new();
            loop {
                match b.get(*i) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *i += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *i += 1;
                        match b.get(*i) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'u') => {
                                let hex = b
                                    .get(*i + 1..*i + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .and_then(char::from_u32)
                                    .ok_or("bad \\u escape")?;
                                s.push(hex);
                                *i += 4;
                            }
                            _ => return Err(format!("bad escape at byte {i}")),
                        }
                        *i += 1;
                    }
                    Some(&c) => {
                        // Multi-byte UTF-8: copy the whole code point.
                        let start = *i;
                        let len = if c < 0x80 {
                            1
                        } else {
                            std::str::from_utf8(&b[start..])
                                .ok()
                                .and_then(|s| s.chars().next())
                                .map(char::len_utf8)
                                .ok_or("invalid utf-8")?
                        };
                        s.push_str(std::str::from_utf8(&b[start..start + len]).unwrap());
                        *i += len;
                    }
                }
            }
        }
        Some(b't') if b[*i..].starts_with(b"true") => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*i..].starts_with(b"false") => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *i;
            while *i < b.len() && b[*i].is_ascii_digit() {
                *i += 1;
            }
            std::str::from_utf8(&b[start..*i])
                .unwrap()
                .parse::<u64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number at byte {start}: {e}"))
        }
        other => Err(format!("unexpected token {other:?} at byte {i}")),
    }
}

/// The first point where a replayed trace departs from a recording — the
/// record/replay harness's product: instead of a terminal "bits differ",
/// the exact round (and partition, when per-partition plans are
/// comparable) where the contract broke.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Round index of the first divergence.
    pub round: u64,
    /// Partition whose planned step diverged, when the divergence is a
    /// per-partition field; `None` for round-global fields.
    pub partition: Option<u64>,
    /// Which contract field diverged (`frontier_len`, `frontier_hash`,
    /// `edge_kind`, `kernel`, `output`, `steps`, `rounds`).
    pub field: String,
    /// Recorded value.
    pub expected: String,
    /// Replayed value.
    pub got: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round {}", self.round)?;
        if let Some(p) = self.partition {
            write!(f, ", partition {p}")?;
        }
        write!(
            f,
            ": {} expected {}, got {}",
            self.field, self.expected, self.got
        )
    }
}

/// Whether two traces' planned kernel choices are directly comparable.
/// Frontier digests are *always* comparable (bit-identity is the whole
/// contract); the plan is only comparable when both runs asked the planner
/// the same question — same executor and forced-kernel setting, and for
/// the partitioned executor the same partition count and output-mode
/// policy. Thread count and chunk cap never enter the plan, which is
/// exactly what lets a 1-thread recording check a 4-thread replay.
pub fn plan_comparable(a: &TraceHeader, b: &TraceHeader) -> bool {
    if a.executor != b.executor || a.force != b.force {
        return false;
    }
    match a.executor.as_str() {
        "partitioned" => a.partitions == b.partitions && a.output_mode == b.output_mode,
        _ => true,
    }
}

/// Compares a replayed trace against a recording round by round and
/// returns the **first diverging round**, or `None` when every contract
/// field matches.
///
/// Within a round the plan (made from the round's *input* frontier, which
/// the previous round already validated) is checked before the output
/// digest, so the report points at the earliest broken decision. Schedule
/// fields (`sched`) are never compared. A run that produced fewer or more
/// rounds than the recording diverges at the first missing round.
pub fn first_divergence(recorded: &RoundTrace, replayed: &RoundTrace) -> Option<Divergence> {
    let plans = plan_comparable(&recorded.header, &replayed.header);
    // Step layouts are a deterministic function of the layout policy (a
    // fixed policy pins them outright; the advisor is deterministic for a
    // given graph and sample rate), so they are contract fields exactly
    // when both runs declared the same policy. Traces recorded under
    // *different* policies stay comparable on everything else — that is
    // the layout-differential suite's whole point.
    let layouts = plans && recorded.header.layout == replayed.header.layout;
    let common = recorded.rounds.len().min(replayed.rounds.len());
    for i in 0..common {
        let a = &recorded.rounds[i];
        let b = &replayed.rounds[i];
        let round = a.round;
        if plans {
            match (&a.kernel, &b.kernel) {
                (RoundKernel::Monolithic(x), RoundKernel::Monolithic(y)) if x != y => {
                    return Some(Divergence {
                        round,
                        partition: None,
                        field: "edge_kind".to_string(),
                        expected: edge_kind_label(*x).to_string(),
                        got: edge_kind_label(*y).to_string(),
                    });
                }
                (RoundKernel::Partitioned(xs), RoundKernel::Partitioned(ys)) => {
                    for (sa, sb) in xs.iter().zip(ys) {
                        if sa.partition != sb.partition {
                            return Some(Divergence {
                                round,
                                partition: Some(sa.partition.min(sb.partition)),
                                field: "steps".to_string(),
                                expected: format!("partition {}", sa.partition),
                                got: format!("partition {}", sb.partition),
                            });
                        }
                        if sa.kernel != sb.kernel {
                            return Some(Divergence {
                                round,
                                partition: Some(sa.partition),
                                field: "kernel".to_string(),
                                expected: kernel_label(sa.kernel).to_string(),
                                got: kernel_label(sb.kernel).to_string(),
                            });
                        }
                        if sa.output != sb.output {
                            return Some(Divergence {
                                round,
                                partition: Some(sa.partition),
                                field: "output".to_string(),
                                expected: sa.output.label().to_string(),
                                got: sb.output.label().to_string(),
                            });
                        }
                        if layouts && sa.layout != sb.layout {
                            return Some(Divergence {
                                round,
                                partition: Some(sa.partition),
                                field: "layout".to_string(),
                                expected: sa.layout.label().to_string(),
                                got: sb.layout.label().to_string(),
                            });
                        }
                    }
                    if xs.len() != ys.len() {
                        let extra = if xs.len() > ys.len() { xs } else { ys };
                        return Some(Divergence {
                            round,
                            partition: Some(extra[xs.len().min(ys.len())].partition),
                            field: "steps".to_string(),
                            expected: format!("{} steps", xs.len()),
                            got: format!("{} steps", ys.len()),
                        });
                    }
                }
                // Shape mismatch (monolithic vs partitioned vs forced) is
                // impossible when `plan_comparable` held, and not a
                // contract violation otherwise.
                _ => {}
            }
        }
        // Per-lane digests localize a fused divergence to one query of
        // the batch, so they are checked before the (coarser) union
        // digest.
        match (&a.lanes, &b.lanes) {
            (Some(xs), Some(ys)) => {
                if xs.len() != ys.len() {
                    return Some(Divergence {
                        round,
                        partition: None,
                        field: "lanes".to_string(),
                        expected: format!("{} lanes", xs.len()),
                        got: format!("{} lanes", ys.len()),
                    });
                }
                for (k, (x, y)) in xs.iter().zip(ys).enumerate() {
                    if x != y {
                        return Some(Divergence {
                            round,
                            partition: None,
                            field: format!("lane_hash[{k}]"),
                            expected: format!("{x:#018x}"),
                            got: format!("{y:#018x}"),
                        });
                    }
                }
            }
            (Some(xs), None) => {
                return Some(Divergence {
                    round,
                    partition: None,
                    field: "lanes".to_string(),
                    expected: format!("fused ({} lanes)", xs.len()),
                    got: "scalar".to_string(),
                });
            }
            (None, Some(ys)) => {
                return Some(Divergence {
                    round,
                    partition: None,
                    field: "lanes".to_string(),
                    expected: "scalar".to_string(),
                    got: format!("fused ({} lanes)", ys.len()),
                });
            }
            (None, None) => {}
        }
        if a.frontier_len != b.frontier_len {
            return Some(Divergence {
                round,
                partition: None,
                field: "frontier_len".to_string(),
                expected: a.frontier_len.to_string(),
                got: b.frontier_len.to_string(),
            });
        }
        if a.frontier_hash != b.frontier_hash {
            return Some(Divergence {
                round,
                partition: None,
                field: "frontier_hash".to_string(),
                expected: format!("{:#018x}", a.frontier_hash),
                got: format!("{:#018x}", b.frontier_hash),
            });
        }
    }
    if recorded.rounds.len() != replayed.rounds.len() {
        return Some(Divergence {
            round: common as u64,
            partition: None,
            field: "rounds".to_string(),
            expected: format!("{} rounds", recorded.rounds.len()),
            got: format!("{} rounds", replayed.rounds.len()),
        });
    }
    None
}

/// Fault-injection operator: min-label propagation whose update rule
/// depends on **which thread** executes it. The first thread to touch the
/// operator claims lane 0 and behaves honestly (`label[d] ← min(label[d],
/// label[s])`); every later thread claims the next lane and perturbs its
/// propagated labels by `+lane`. A 1-thread run therefore produces the
/// honest fixpoint, while a multi-thread run violates the engine's
/// bit-identity contract in a schedule-dependent way — exactly the class
/// of bug the record/replay harness exists to localize, which makes this
/// the harness's positive control (`repro replay --fault`). Monotone
/// (labels only decrease), so even faulty runs terminate within `n`
/// rounds.
pub struct ThreadVaryingMinLabel {
    labels: Vec<AtomicU32>,
    lanes: Mutex<HashMap<ThreadId, u32>>,
}

impl ThreadVaryingMinLabel {
    /// Labels initialised to vertex ids (the CC convention).
    pub fn new(n: usize) -> Self {
        ThreadVaryingMinLabel {
            labels: (0..n as u32).map(AtomicU32::new).collect(),
            lanes: Mutex::new(HashMap::new()),
        }
    }

    /// The executing thread's lane: 0 for the first thread ever to call
    /// (honest), `k` for the `k`-th distinct thread (perturbed by `+k`).
    /// A mutex on the hot path is deliberate — this operator only runs in
    /// fault-injection tests, where clarity beats throughput.
    fn lane(&self) -> u32 {
        let mut lanes = self.lanes.lock().unwrap();
        let next = lanes.len() as u32;
        *lanes.entry(std::thread::current().id()).or_insert(next)
    }

    /// How many distinct threads executed updates.
    pub fn lanes_claimed(&self) -> usize {
        self.lanes.lock().unwrap().len()
    }

    /// Current labels (quiesced readers only).
    pub fn snapshot(&self) -> Vec<u32> {
        self.labels
            .iter()
            .map(|l| l.load(Ordering::Relaxed))
            .collect()
    }
}

impl EdgeOp for ThreadVaryingMinLabel {
    fn update(&self, s: u32, d: u32, _w: f32) -> bool {
        let sl = self.labels[s as usize]
            .load(Ordering::Relaxed)
            .saturating_add(self.lane());
        let cur = self.labels[d as usize].load(Ordering::Relaxed);
        if sl < cur {
            self.labels[d as usize].store(sl, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn update_atomic(&self, s: u32, d: u32, _w: f32) -> bool {
        let sl = self.labels[s as usize]
            .load(Ordering::Relaxed)
            .saturating_add(self.lane());
        gg_runtime::atomics::fetch_min_u32(&self.labels[d as usize], sl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gg_graph::generators;
    use gg_memsim::cache::{Cache, CacheConfig};
    use gg_memsim::trace::CountingSink;

    fn twitterish() -> EdgeList {
        generators::rmat(10, 12_000, generators::RmatParams::skewed(), 21)
    }

    #[test]
    fn fig2_distances_contract_with_partitions() {
        // The headline claim of §II.C: more partitions => shorter worst-case
        // reuse distance of next-array updates.
        let el = twitterish();
        let p1 = fig2_reuse_profile(&el, 1);
        let p16 = fig2_reuse_profile(&el, 16);
        let p64 = fig2_reuse_profile(&el, 64);
        let q1 = p1.histogram.quantile_upper(0.95);
        let q16 = p16.histogram.quantile_upper(0.95);
        let q64 = p64.histogram.quantile_upper(0.95);
        assert!(q16 <= q1, "p95 must not grow: {q1} -> {q16}");
        assert!(q64 <= q16, "p95 must not grow: {q16} -> {q64}");
        assert!(
            q64 < q1,
            "partitioning must shorten distances: {q1} -> {q64}"
        );
        // Same number of reuses in all cases (the edge count is fixed).
        assert_eq!(
            p1.total_references, p64.total_references,
            "trace length is partition-independent"
        );
    }

    #[test]
    fn traced_pagerank_visits_all_edges_each_iteration() {
        let el = generators::erdos_renyi(200, 2000, 3);
        let mut sink = CountingSink::default();
        let work = run_traced(
            &el,
            4,
            EdgeOrder::Hilbert,
            TracedAlgorithm::PageRank,
            &mut sink,
        );
        assert_eq!(work.edges, 10 * 2000);
        assert!(sink.count >= work.edges);
    }

    #[test]
    fn traced_work_is_partition_independent_for_coo() {
        // §II.F: COO work does not grow with partitioning.
        let el = twitterish();
        let mut s1 = CountingSink::default();
        let w1 = run_traced(
            &el,
            1,
            EdgeOrder::Hilbert,
            TracedAlgorithm::PageRank,
            &mut s1,
        );
        let mut s64 = CountingSink::default();
        let w64 = run_traced(
            &el,
            64,
            EdgeOrder::Hilbert,
            TracedAlgorithm::PageRank,
            &mut s64,
        );
        assert_eq!(w1.edges, w64.edges);
        assert_eq!(s1.count, s64.count);
    }

    #[test]
    fn traced_bfs_reaches_reachable_vertices() {
        // Path graph: BFS walks it end to end, always sparse.
        let el = generators::path(50);
        let mut sink = CountingSink::default();
        let work = run_traced(&el, 2, EdgeOrder::Source, TracedAlgorithm::Bfs, &mut sink);
        assert_eq!(work.edges, 49);
    }

    #[test]
    fn traced_bellman_ford_terminates() {
        let mut el = generators::erdos_renyi(100, 1500, 9);
        gg_graph::weights::attach_integer(&mut el, 8, 4);
        let mut sink = CountingSink::default();
        let work = run_traced(
            &el,
            4,
            EdgeOrder::Hilbert,
            TracedAlgorithm::BellmanFord,
            &mut sink,
        );
        assert!(work.edges > 0);
    }

    #[test]
    fn partitioning_reduces_llc_misses_for_pagerank() {
        // The Figure 8 effect, at test scale: feed the traced PR stream into
        // a small LLC; partitioning confines the destination range so misses
        // drop. Source (CSR) edge order isolates the partitioning effect —
        // Hilbert order already has good locality at P = 1, which is exactly
        // the Figure 7 observation that the two techniques overlap. The
        // vertex-data arrays (8 B x 2^16 = 512 KiB) must dwarf the 64 KiB
        // cache for the destination-confinement effect to be visible.
        let el = generators::rmat(16, 100_000, generators::RmatParams::skewed(), 2);
        let cfg = CacheConfig {
            size_bytes: 64 * 1024,
            ways: 8,
            line_bytes: 64,
        };
        let mut c1 = Cache::new(cfg);
        run_traced(
            &el,
            1,
            EdgeOrder::Source,
            TracedAlgorithm::PageRank,
            &mut c1,
        );
        let mut c64 = Cache::new(cfg);
        run_traced(
            &el,
            64,
            EdgeOrder::Source,
            TracedAlgorithm::PageRank,
            &mut c64,
        );
        let m1 = c1.stats().misses;
        let m64 = c64.stats().misses;
        assert!(
            (m64 as f64) < (m1 as f64) * 0.95,
            "expected >=5% miss reduction: {m1} -> {m64}"
        );
    }

    #[test]
    fn parallel_interleaving_reproduces_fig8_contraction() {
        // With T concurrent workers, the aggregate destination working set
        // is T active partitions wide: at P ~ T it spans the whole vertex
        // array (thrashing); at larger P it shrinks to T·n/P and fits, so
        // misses fall — the Figure 8 shape. Source order isolates the
        // partitioning effect (Hilbert order already localises at P = 1,
        // the Figure 7 overlap); at reproduction scale the optimum sits
        // near P = 48 rather than the paper's 384 because the graphs are
        // three orders of magnitude smaller.
        let el = generators::rmat(14, 500_000, generators::RmatParams::skewed(), 3);
        let footprint = (el.num_vertices() * 16) as u64;
        let cfg = CacheConfig::scaled_llc(footprint, 4);
        let threads = 16;
        let miss = |p: usize| {
            let mut c = Cache::new(cfg);
            run_traced_parallel(
                &el,
                p,
                EdgeOrder::Source,
                TracedAlgorithm::PageRank,
                threads,
                &mut c,
            );
            c.stats().misses
        };
        let m4 = miss(4);
        let m48 = miss(48);
        assert!(
            (m48 as f64) < (m4 as f64) * 0.8,
            "expected >=20% miss reduction: P=4 {m4} -> P=48 {m48}"
        );
    }

    #[test]
    fn interleaved_stream_emits_every_edge_once() {
        let el = generators::erdos_renyi(300, 5000, 8);
        let mut sink = CountingSink::default();
        let work = run_traced_parallel(
            &el,
            32,
            EdgeOrder::Hilbert,
            TracedAlgorithm::PageRank,
            7,
            &mut sink,
        );
        assert_eq!(work.edges, 10 * 5000);
    }

    #[test]
    fn hilbert_order_beats_source_order_unpartitioned() {
        // §IV.C / Figure 7: Hilbert edge order improves locality on its own.
        let el = generators::rmat(16, 100_000, generators::RmatParams::skewed(), 2);
        let cfg = CacheConfig {
            size_bytes: 64 * 1024,
            ways: 8,
            line_bytes: 64,
        };
        let mut c_src = Cache::new(cfg);
        run_traced(
            &el,
            1,
            EdgeOrder::Source,
            TracedAlgorithm::PageRank,
            &mut c_src,
        );
        let mut c_hil = Cache::new(cfg);
        run_traced(
            &el,
            1,
            EdgeOrder::Hilbert,
            TracedAlgorithm::PageRank,
            &mut c_hil,
        );
        assert!(
            c_hil.stats().misses < c_src.stats().misses,
            "hilbert {} vs source {}",
            c_hil.stats().misses,
            c_src.stats().misses
        );
    }

    // -- instrumented-traversal determinism (the memsim half) ------------

    /// `run_traced` is documented as exactly `run_traced_parallel` with
    /// one worker: both entry points must emit the *identical* reference
    /// stream, cache line for cache line, not merely the same counts.
    #[test]
    fn run_traced_equals_parallel_with_one_thread() {
        let el = twitterish();
        for algo in [
            TracedAlgorithm::PageRank,
            TracedAlgorithm::BellmanFord,
            TracedAlgorithm::Bfs,
        ] {
            let mut seq = AddressTrace::new();
            let w_seq = run_traced(&el, 8, EdgeOrder::Hilbert, algo, &mut seq);
            let mut par = AddressTrace::new();
            let w_par = run_traced_parallel(&el, 8, EdgeOrder::Hilbert, algo, 1, &mut par);
            assert_eq!(w_seq, w_par, "{algo:?}: op counts must match");
            assert_eq!(
                seq.lines(),
                par.lines(),
                "{algo:?}: one-thread streams must be identical"
            );
        }
    }

    /// Repeated traced runs of the same scenario are bit-identical — the
    /// property that lets a traced profile serve as a regression baseline.
    #[test]
    fn traced_runs_are_deterministic_across_calls() {
        let el = twitterish();
        let mut a = AddressTrace::new();
        let wa = run_traced_parallel(
            &el,
            16,
            EdgeOrder::Hilbert,
            TracedAlgorithm::PageRank,
            4,
            &mut a,
        );
        let mut b = AddressTrace::new();
        let wb = run_traced_parallel(
            &el,
            16,
            EdgeOrder::Hilbert,
            TracedAlgorithm::PageRank,
            4,
            &mut b,
        );
        assert_eq!(wa, wb);
        assert_eq!(a.lines(), b.lines());
    }

    /// `fig2_reuse_profile` is a pure function of (graph, partitions).
    #[test]
    fn fig2_profile_is_deterministic_across_calls() {
        let el = twitterish();
        for p in [1, 16] {
            let a = fig2_reuse_profile(&el, p);
            let b = fig2_reuse_profile(&el, p);
            assert_eq!(a.total_references, b.total_references);
            assert_eq!(a.cold_references, b.cold_references);
            for q in [0.5, 0.95, 0.99] {
                assert_eq!(
                    a.histogram.quantile_upper(q),
                    b.histogram.quantile_upper(q),
                    "P = {p}, q = {q}"
                );
            }
        }
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use crate::config::Config;
    use gg_graph::bitmap::Bitmap;

    fn sparse_frontier(vertices: Vec<u32>, n: usize) -> Frontier {
        let degrees = vec![1u32; n];
        Frontier::from_sorted(vertices, n, &degrees)
    }

    #[test]
    fn digest_is_representation_independent() {
        let n = 200;
        let verts = vec![3u32, 17, 64, 65, 130, 199];
        let sparse = sparse_frontier(verts.clone(), n);
        let mut bits = Bitmap::new(n);
        for &v in &verts {
            bits.set(v as usize);
        }
        let pool = gg_runtime::pool::Pool::new(1);
        let dense = Frontier::from_dense(bits, &vec![1u32; n], &pool);
        assert_eq!(sparse.len(), dense.len());
        assert_eq!(frontier_digest(&sparse), frontier_digest(&dense));
        // And the digest is order-sensitive in content: dropping a vertex
        // changes it.
        let shorter = sparse_frontier(vec![3, 17, 64, 65, 130], n);
        assert_ne!(frontier_digest(&sparse), frontier_digest(&shorter));
    }

    fn sample_trace() -> RoundTrace {
        let cfg = Config::partitioned_for_tests();
        RoundTrace {
            header: TraceHeader::new("cc", "unit \"quoted\" scenario", &cfg, false),
            rounds: vec![
                RoundRecord {
                    round: 0,
                    frontier_len: 42,
                    frontier_hash: 0xdead_beef_0123_4567,
                    kernel: RoundKernel::Partitioned(vec![
                        StepRecord {
                            partition: 0,
                            kernel: PartKernel::Dense,
                            output: OutputRepr::Dense,
                            layout: EdgeOrder::Hilbert,
                        },
                        StepRecord {
                            partition: 3,
                            kernel: PartKernel::Sparse,
                            output: OutputRepr::Sparse,
                            layout: EdgeOrder::Source,
                        },
                    ]),
                    lanes: Some(vec![0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210]),
                    sched: CounterSnapshot {
                        edges: 100,
                        vertices: 10,
                        merge_words: 4,
                        chunks: 6,
                        hub_subchunks: 1,
                        steals: 2,
                        cross_domain_steals: 1,
                        fused_lanes: 9,
                        lane_union_words: 3,
                    },
                },
                RoundRecord {
                    round: 1,
                    frontier_len: 0,
                    frontier_hash: 0xcbf2_9ce4_8422_2325,
                    kernel: RoundKernel::Monolithic(EdgeKind::Medium),
                    lanes: None,
                    sched: CounterSnapshot::default(),
                },
                RoundRecord {
                    round: 2,
                    frontier_len: 7,
                    frontier_hash: 1,
                    kernel: RoundKernel::Forced,
                    lanes: None,
                    sched: CounterSnapshot::default(),
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trips_every_kernel_shape() {
        let trace = sample_trace();
        let text = trace.to_jsonl();
        let parsed = RoundTrace::from_jsonl(&text).expect("round trip");
        assert_eq!(trace, parsed);
    }

    #[test]
    fn jsonl_rejects_other_versions_and_garbage() {
        let text = sample_trace().to_jsonl();
        assert!(
            text.contains("\"version\":3"),
            "fixture must carry the current format version"
        );
        let bumped = text.replacen("\"version\":3", "\"version\":999", 1);
        let err = RoundTrace::from_jsonl(&bumped).unwrap_err();
        assert!(err.contains("version 999"), "{err}");
        assert!(RoundTrace::from_jsonl("").is_err());
        assert!(RoundTrace::from_jsonl("{\"type\":\"round\"}").is_err());
        assert!(RoundTrace::from_jsonl("not json at all").is_err());
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let t = sample_trace();
        assert_eq!(first_divergence(&t, &t.clone()), None);
    }

    #[test]
    fn hash_divergence_reports_first_differing_round() {
        let a = sample_trace();
        let mut b = a.clone();
        b.rounds[1].frontier_hash ^= 1;
        b.rounds[2].frontier_hash ^= 1; // later damage must not mask round 1
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.round, 1);
        assert_eq!(d.field, "frontier_hash");
        assert_eq!(d.partition, None);
    }

    #[test]
    fn lane_divergence_reports_the_lane_index() {
        let a = sample_trace();
        let mut b = a.clone();
        if let Some(lanes) = &mut b.rounds[0].lanes {
            lanes[1] ^= 1;
        }
        // The union hash still matches, so only the per-lane digests can
        // localize the damage.
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.round, 0);
        assert_eq!(d.field, "lane_hash[1]");
        assert_eq!(d.partition, None);

        // A fused-vs-scalar shape mismatch is reported as such.
        let mut c = a.clone();
        c.rounds[0].lanes = None;
        let d = first_divergence(&a, &c).expect("must diverge");
        assert_eq!(d.field, "lanes");
        assert!(d.expected.contains("fused"), "{}", d.expected);
        assert_eq!(d.got, "scalar");
    }

    #[test]
    fn plan_divergence_names_the_partition() {
        let a = sample_trace();
        let mut b = a.clone();
        if let RoundKernel::Partitioned(steps) = &mut b.rounds[0].kernel {
            steps[1].kernel = PartKernel::Dense;
        }
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.round, 0);
        assert_eq!(d.partition, Some(3));
        assert_eq!(d.field, "kernel");
        assert_eq!(d.expected, "sparse");
        assert_eq!(d.got, "dense");
        // The Display form carries all four coordinates.
        let msg = d.to_string();
        assert!(
            msg.contains("round 0") && msg.contains("partition 3"),
            "{msg}"
        );
    }

    #[test]
    fn plan_comparison_is_skipped_across_partition_counts() {
        let a = sample_trace();
        let mut b = a.clone();
        b.header.partitions += 8;
        if let RoundKernel::Partitioned(steps) = &mut b.rounds[0].kernel {
            steps.pop(); // different plan shape — legitimate across counts
        }
        assert!(!plan_comparable(&a.header, &b.header));
        assert_eq!(first_divergence(&a, &b), None, "digests still match");
        // But digests are still contract: break one and it reports.
        b.rounds[2].frontier_len += 1;
        let d = first_divergence(&a, &b).expect("digest divergence survives");
        assert_eq!(d.round, 2);
        assert_eq!(d.field, "frontier_len");
    }

    #[test]
    fn missing_rounds_diverge_at_the_first_absent_round() {
        let a = sample_trace();
        let mut b = a.clone();
        b.rounds.pop();
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.round, 2);
        assert_eq!(d.field, "rounds");
    }

    #[test]
    fn fault_op_is_honest_on_a_single_thread() {
        // One thread claims lane 0, so updates are plain min-label
        // propagation — the property that makes a 1-thread fault recording
        // a valid honest baseline.
        let op = ThreadVaryingMinLabel::new(4);
        assert!(op.update(0, 2, 1.0), "0 < 2 must propagate");
        assert!(!op.update(3, 1, 1.0), "3 > 1 must not");
        assert!(op.update_atomic(0, 3, 1.0));
        assert_eq!(op.snapshot(), vec![0, 1, 0, 0]);
        assert_eq!(op.lanes_claimed(), 1);
    }
}
